#include "serve/wire.h"

#include <cstring>

#include "bcc/checkpoint.h"
#include "common/errors.h"
#include "partition/bell.h"

namespace bcclb {

namespace {

void append_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

// Bounds-checked little-endian reads over a payload cursor.
struct Reader {
  std::string_view bytes;
  std::size_t pos = 0;

  std::uint64_t take(std::size_t width) {
    if (bytes.size() - pos < width) {
      throw ProtocolViolationError("request payload truncated");
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < width; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[pos + i])) << (8 * i);
    }
    pos += width;
    return v;
  }

  void expect_done() const {
    if (pos != bytes.size()) {
      throw ProtocolViolationError("request payload has trailing bytes");
    }
  }
};

std::string frame(std::uint8_t type, std::uint16_t status, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kWireMagic, sizeof kWireMagic);
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(type));
  append_u16(out, status);
  append_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

}  // namespace

const char* request_type_name(RequestType type) {
  switch (type) {
    case RequestType::kStats: return "stats";
    case RequestType::kClassify: return "classify";
    case RequestType::kIndistGraph: return "indist-graph";
    case RequestType::kRank: return "rank";
    case RequestType::kInfo: return "info";
    case RequestType::kSimImplicit: return "sim-implicit";
    case RequestType::kRankTile: return "rank-tile";
    case RequestType::kBestStrategy: return "best-strategy";
  }
  return "?";
}

const char* cache_source_name(CacheSource source) {
  switch (source) {
    case CacheSource::kCold: return "cold";
    case CacheSource::kHit: return "hit";
    case CacheSource::kCoalesced: return "coalesced";
    case CacheSource::kDisk: return "disk";
  }
  return "?";
}

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kQueueFull: return "queue-full";
    case StatusCode::kRequestTooLarge: return "request-too-large";
    case StatusCode::kProtocolViolation: return "protocol-violation";
    case StatusCode::kDraining: return "draining";
    case StatusCode::kComputeFailed: return "compute-failed";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kNoBackend: return "no-backend";
  }
  return "?";
}

std::string encode_request_payload(const Request& request) {
  std::string out;
  switch (request.type) {
    case RequestType::kStats:
      break;
    case RequestType::kClassify:
      append_u32(out, request.n);
      append_u64(out, request.packed);
      break;
    case RequestType::kIndistGraph:
      append_u32(out, request.n);
      break;
    case RequestType::kRank:
      out.push_back(static_cast<char>(request.family));
      append_u32(out, request.n);
      break;
    case RequestType::kInfo:
      append_u32(out, request.n);
      append_u64(out, request.keep_bits);
      break;
    case RequestType::kSimImplicit:
      out.push_back(static_cast<char>(request.family));
      append_u32(out, request.n);
      append_u64(out, request.packed);  // the spec seed
      break;
    case RequestType::kRankTile:
      out.push_back(static_cast<char>(request.family));
      append_u32(out, request.n);
      append_u64(out, request.packed);  // (tile_rows << 32) | tile_index
      break;
    case RequestType::kBestStrategy:
      out.push_back(static_cast<char>(request.family));  // the driver byte
      append_u32(out, request.n);
      append_u64(out, request.packed);  // (rounds<<56)|(buckets<<48)|(seed<<32)|budget
      break;
  }
  return out;
}

std::uint64_t request_cache_key(const Request& request) {
  std::string keyed;
  keyed.push_back(static_cast<char>(request.type));
  keyed += encode_request_payload(request);
  return fnv1a(keyed);
}

std::string encode_request_frame(const Request& request) {
  return frame(static_cast<std::uint8_t>(request.type), 0, encode_request_payload(request));
}

std::string encode_ok_frame(RequestType type, CacheSource source, std::uint64_t digest,
                            std::string_view artifact) {
  std::string payload;
  payload.reserve(16 + artifact.size());
  append_u64(payload, digest);
  payload.push_back(static_cast<char>(source));
  payload.append(3, '\0');
  append_u32(payload, static_cast<std::uint32_t>(artifact.size()));
  payload.append(artifact);
  return frame(static_cast<std::uint8_t>(type), static_cast<std::uint16_t>(StatusCode::kOk),
               payload);
}

std::string encode_error_frame(RequestType type, StatusCode code, std::string_view message) {
  std::string payload;
  payload.reserve(4 + message.size());
  append_u32(payload, static_cast<std::uint32_t>(message.size()));
  payload.append(message);
  return frame(static_cast<std::uint8_t>(type), static_cast<std::uint16_t>(code), payload);
}

FrameHeader decode_frame_header(std::string_view bytes) {
  if (bytes.size() < kFrameHeaderBytes) {
    throw ProtocolViolationError("frame header truncated");
  }
  if (std::memcmp(bytes.data(), kWireMagic, sizeof kWireMagic) != 0) {
    throw ProtocolViolationError("bad frame magic (expected \"BCS1\")");
  }
  FrameHeader header;
  header.version = static_cast<std::uint8_t>(bytes[4]);
  header.type = static_cast<std::uint8_t>(bytes[5]);
  header.status = static_cast<std::uint16_t>(static_cast<unsigned char>(bytes[6]) |
                                             (static_cast<unsigned char>(bytes[7]) << 8));
  header.payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    header.payload_len |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[8 + i]))
                          << (8 * i);
  }
  if (header.version != kWireVersion) {
    throw ProtocolViolationError("unsupported protocol version " +
                                 std::to_string(header.version) + " (this daemon speaks " +
                                 std::to_string(kWireVersion) + ")");
  }
  return header;
}

Request decode_request(std::uint8_t type, std::string_view payload) {
  Request request;
  Reader reader{payload};
  switch (static_cast<RequestType>(type)) {
    case RequestType::kStats:
      request.type = RequestType::kStats;
      break;
    case RequestType::kClassify: {
      request.type = RequestType::kClassify;
      request.n = static_cast<std::uint32_t>(reader.take(4));
      request.packed = reader.take(8);
      if (request.n < 3 || request.n > kMaxClassifyN) {
        throw ProtocolViolationError("classify: n=" + std::to_string(request.n) +
                                     " outside [3, " + std::to_string(kMaxClassifyN) + "]");
      }
      break;
    }
    case RequestType::kIndistGraph: {
      request.type = RequestType::kIndistGraph;
      request.n = static_cast<std::uint32_t>(reader.take(4));
      if (request.n < kMinIndistN || request.n > kMaxIndistN) {
        throw ProtocolViolationError("indist-graph: n=" + std::to_string(request.n) +
                                     " outside [" + std::to_string(kMinIndistN) + ", " +
                                     std::to_string(kMaxIndistN) + "]");
      }
      break;
    }
    case RequestType::kRank: {
      request.type = RequestType::kRank;
      request.family = static_cast<std::uint8_t>(reader.take(1));
      request.n = static_cast<std::uint32_t>(reader.take(4));
      if (request.family == 'M') {
        if (request.n < 1 || request.n > kMaxRankMN) {
          throw ProtocolViolationError("rank: M_n needs n in [1, " +
                                       std::to_string(kMaxRankMN) + "], got " +
                                       std::to_string(request.n));
        }
      } else if (request.family == 'E') {
        if (request.n < 4 || request.n > kMaxRankEN || request.n % 2 != 0) {
          throw ProtocolViolationError("rank: E_n needs even n in [4, " +
                                       std::to_string(kMaxRankEN) + "], got " +
                                       std::to_string(request.n));
        }
      } else {
        throw ProtocolViolationError("rank: unknown matrix family (expected 'M' or 'E')");
      }
      break;
    }
    case RequestType::kInfo: {
      request.type = RequestType::kInfo;
      request.n = static_cast<std::uint32_t>(reader.take(4));
      request.keep_bits = reader.take(8);
      if (request.n < 1 || request.n > kMaxInfoN) {
        throw ProtocolViolationError("info: n=" + std::to_string(request.n) + " outside [1, " +
                                     std::to_string(kMaxInfoN) + "]");
      }
      double keep;
      static_assert(sizeof keep == sizeof request.keep_bits);
      std::memcpy(&keep, &request.keep_bits, sizeof keep);
      if (!(keep >= 0.0 && keep <= 1.0)) {  // rejects NaN too
        throw ProtocolViolationError("info: keep fraction outside [0, 1]");
      }
      break;
    }
    case RequestType::kSimImplicit: {
      request.type = RequestType::kSimImplicit;
      request.family = static_cast<std::uint8_t>(reader.take(1));
      request.n = static_cast<std::uint32_t>(reader.take(4));
      request.packed = reader.take(8);  // the spec seed
      if (request.family > 3) {
        throw ProtocolViolationError("sim-implicit: unknown family byte " +
                                     std::to_string(request.family));
      }
      if (request.n < kMinSimImplicitN || request.n > kMaxSimImplicitN) {
        throw ProtocolViolationError("sim-implicit: n=" + std::to_string(request.n) +
                                     " outside [" + std::to_string(kMinSimImplicitN) + ", " +
                                     std::to_string(kMaxSimImplicitN) + "]");
      }
      break;
    }
    case RequestType::kRankTile: {
      request.type = RequestType::kRankTile;
      request.family = static_cast<std::uint8_t>(reader.take(1));
      request.n = static_cast<std::uint32_t>(reader.take(4));
      request.packed = reader.take(8);
      if (request.family != '2' && request.family != 'p') {
        throw ProtocolViolationError("rank-tile: unknown field byte (expected '2' or 'p')");
      }
      if (request.n < 1 || request.n > kMaxRankMN) {
        throw ProtocolViolationError("rank-tile: n=" + std::to_string(request.n) +
                                     " outside [1, " + std::to_string(kMaxRankMN) + "]");
      }
      const std::uint64_t tile_rows = request.packed >> 32;
      const std::uint64_t tile_index = request.packed & 0xffffffffULL;
      if (tile_rows < 1 || tile_rows > kMaxRankTileRows) {
        throw ProtocolViolationError("rank-tile: tile_rows=" + std::to_string(tile_rows) +
                                     " outside [1, " + std::to_string(kMaxRankTileRows) + "]");
      }
      const std::uint64_t bell = bell_number_u64(request.n);
      const std::uint64_t tiles = (bell + tile_rows - 1) / tile_rows;
      if (tile_index >= tiles) {
        throw ProtocolViolationError("rank-tile: tile_index=" + std::to_string(tile_index) +
                                     " beyond the " + std::to_string(tiles) + " tiles of M_" +
                                     std::to_string(request.n));
      }
      break;
    }
    case RequestType::kBestStrategy: {
      request.type = RequestType::kBestStrategy;
      request.family = static_cast<std::uint8_t>(reader.take(1));
      request.n = static_cast<std::uint32_t>(reader.take(4));
      request.packed = reader.take(8);
      if (request.family != 'r' && request.family != 'e' && request.family != 'x') {
        throw ProtocolViolationError(
            "best-strategy: unknown driver byte (expected 'r', 'e' or 'x')");
      }
      if (request.n < kMinSearchN || request.n > kMaxSearchN) {
        throw ProtocolViolationError("best-strategy: n=" + std::to_string(request.n) +
                                     " outside [" + std::to_string(kMinSearchN) + ", " +
                                     std::to_string(kMaxSearchN) + "]");
      }
      const std::uint64_t rounds = request.packed >> 56;
      const std::uint64_t buckets = (request.packed >> 48) & 0xff;
      const std::uint64_t budget = request.packed & 0xffffffffULL;
      if (rounds < 1 || rounds > kMaxSearchRounds) {
        throw ProtocolViolationError("best-strategy: rounds=" + std::to_string(rounds) +
                                     " outside [1, " + std::to_string(kMaxSearchRounds) + "]");
      }
      if (buckets < 1 || buckets > kMaxSearchBuckets) {
        throw ProtocolViolationError("best-strategy: buckets=" + std::to_string(buckets) +
                                     " outside [1, " + std::to_string(kMaxSearchBuckets) + "]");
      }
      // The exhaustive driver enumerates its whole space; for the seeded
      // drivers the budget is the evaluation count and must be positive.
      if (request.family != 'x' && (budget < 1 || budget > kMaxSearchBudget)) {
        throw ProtocolViolationError("best-strategy: budget=" + std::to_string(budget) +
                                     " outside [1, " + std::to_string(kMaxSearchBudget) + "]");
      }
      if (request.family == 'x' && !(rounds * buckets <= 6 && buckets <= 4)) {
        // 3^(rounds·K)·2^K candidates: cap the exhaustive space at
        // 3^6 · 2^4 = 11664 so a cold build stays interactive.
        throw ProtocolViolationError(
            "best-strategy: exhaustive space too large (need rounds*buckets <= 6 and "
            "buckets <= 4)");
      }
      break;
    }
    default:
      throw ProtocolViolationError("unknown request type " + std::to_string(type));
  }
  reader.expect_done();
  return request;
}

Response decode_response(const FrameHeader& header, std::string_view payload) {
  Response response;
  response.type = static_cast<RequestType>(header.type);
  response.status = static_cast<StatusCode>(header.status);
  Reader reader{payload};
  if (response.status == StatusCode::kOk) {
    response.digest = reader.take(8);
    response.source = static_cast<CacheSource>(reader.take(1));
    reader.take(3);  // reserved
    const std::size_t len = reader.take(4);
    if (payload.size() - reader.pos != len) {
      throw ProtocolViolationError("response artifact length mismatch");
    }
    response.artifact.assign(payload.substr(reader.pos));
  } else {
    const std::size_t len = reader.take(4);
    if (payload.size() - reader.pos != len) {
      throw ProtocolViolationError("response message length mismatch");
    }
    response.artifact.assign(payload.substr(reader.pos));
  }
  return response;
}

}  // namespace bcclb

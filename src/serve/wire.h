// The bccd wire protocol: versioned, length-prefixed binary frames.
//
// Every message — request or response — is one frame:
//
//     offset  size  field
//          0     4  magic        "BCS1" (0x42 0x43 0x53 0x31 on the wire)
//          4     1  version      kWireVersion (1)
//          5     1  type         RequestType (echoed back in the response)
//          6     2  status       little-endian; 0 in requests, StatusCode in
//                                responses
//          8     4  payload_len  little-endian byte count of the payload
//         12     …  payload
//
// Request payloads are fixed little-endian fields per type (see Request);
// an OK response payload is
//
//     u64 artifact_digest   FNV-1a of the artifact bytes (the PR 2 family)
//     u8  cache_source      CacheSource: cold build / cache hit / coalesced
//     u8[3] reserved        zero
//     u32 artifact_len
//     …   artifact          deterministic text artifact
//
// and an error response payload is a u32-length-prefixed UTF-8 message (the
// error *kind* travels in the status field). All integers little-endian; the
// protocol never carries pointers, padding, or host-endian bytes, so a
// response is bit-identical regardless of which host produced it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace bcclb {

inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;
inline constexpr char kWireMagic[4] = {'B', 'C', 'S', '1'};

// Request types cover the paper's core cached queries plus a health probe.
enum class RequestType : std::uint8_t {
  kStats = 1,        // health/stats probe (never cached, served inline)
  kClassify = 2,     // TwoCycle classification of a packed cycle structure
  kIndistGraph = 3,  // Theorem 3.1: indistinguishability-graph CSR +
                     // star-packing certificate
  kRank = 4,         // Theorem 4.4 pipeline: rank certificate for M_n / E_n
  kInfo = 5,         // Theorem 4.5: PartitionComp information bound
  kSimImplicit = 6,  // min-ID flood over an implicit instance (family, n, seed)
  kRankTile = 7,     // one tile of the out-of-core M_n elimination: join bits
                     // digest + standalone tile rank (linalg/tiled_rank.h)
  kBestStrategy = 8,  // best-known adversary strategy table for a bounded
                      // seeded search cell (search/engine.h)
};

const char* request_type_name(RequestType type);

// Response status codes; every non-zero code maps 1:1 onto an errors.h leaf.
enum class StatusCode : std::uint16_t {
  kOk = 0,
  kQueueFull = 1,        // QueueFullError — admission queue at capacity
  kRequestTooLarge = 2,  // RequestTooLargeError — payload over the cap
  kProtocolViolation = 3,  // ProtocolViolationError — malformed frame/params
  kDraining = 4,           // DrainingError — daemon is shutting down
  kComputeFailed = 5,      // handler threw a BcclbError (message names kind)
  kInternal = 6,           // anything else; a server bug
  kNoBackend = 7,          // NoBackendError — router found no live shard
};

const char* status_code_name(StatusCode code);

// Where an OK response's artifact came from.
enum class CacheSource : std::uint8_t {
  kCold = 0,       // built for this request
  kHit = 1,        // served from the in-memory artifact cache (digest re-verified)
  kCoalesced = 2,  // shared a concurrent identical request's build
  kDisk = 3,       // warmed from the durable on-disk tier (digest re-verified)
};

const char* cache_source_name(CacheSource source);

// A decoded request. Fields beyond `type` are meaningful per type:
//   kClassify    — n, packed (successor word)
//   kIndistGraph — n
//   kRank        — family ('M' or 'E'), n
//   kInfo        — n, keep_bits (IEEE-754 bit pattern of the keep fraction)
//   kSimImplicit — family (an ImplicitFamily byte), n, packed (the spec seed)
//   kRankTile    — family ('2' for GF(2), 'p' for mod-p), n, packed =
//                  (tile_rows << 32) | tile_index
//   kBestStrategy— family (driver: 'r' random, 'e' evolution, 'x'
//                  exhaustive), n, packed = (rounds << 56) | (buckets << 48)
//                  | (seed << 32) | budget
struct Request {
  RequestType type = RequestType::kStats;
  std::uint32_t n = 0;
  std::uint64_t packed = 0;
  std::uint8_t family = 'M';
  std::uint64_t keep_bits = 0x3ff0000000000000ULL;  // 1.0

  friend bool operator==(const Request&, const Request&) = default;
};

// Canonical payload encoding of a request — the bytes that travel on the
// wire, and the bytes whose FNV-1a is the cache key. One request, one byte
// string, one key: content addressing falls out of the encoding.
std::string encode_request_payload(const Request& request);

// FNV-1a over type byte + canonical payload.
std::uint64_t request_cache_key(const Request& request);

// Full frames, ready to write to a socket.
std::string encode_request_frame(const Request& request);
std::string encode_ok_frame(RequestType type, CacheSource source, std::uint64_t digest,
                            std::string_view artifact);
std::string encode_error_frame(RequestType type, StatusCode code, std::string_view message);

struct FrameHeader {
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  std::uint16_t status = 0;
  std::uint32_t payload_len = 0;
};

// Parses the 12-byte header. Throws ProtocolViolationError on bad magic or
// version — the stream cannot be re-synchronized past either. Length policy
// (RequestTooLarge) is the server's, not the codec's.
FrameHeader decode_frame_header(std::string_view bytes);

// Decodes a request payload for `type`. Throws ProtocolViolationError on an
// unknown type, short/overlong payload, or field values no handler accepts
// (e.g. n beyond the serving range) — the one place parameter validation
// happens, so the scheduler only ever sees well-formed requests.
Request decode_request(std::uint8_t type, std::string_view payload);

// A decoded response (client side).
struct Response {
  RequestType type = RequestType::kStats;
  StatusCode status = StatusCode::kOk;
  CacheSource source = CacheSource::kCold;
  std::uint64_t digest = 0;      // FNV-1a the server computed; verify locally
  std::string artifact;          // OK: artifact text; error: message
};

Response decode_response(const FrameHeader& header, std::string_view payload);

// Serving ranges (validated in decode_request, documented in DESIGN.md §6):
// exhaustive enumeration costs grow factorially, so the daemon refuses sizes
// that cannot be served interactively even cold.
inline constexpr std::uint32_t kMaxClassifyN = 16;   // packed-word limit
inline constexpr std::uint32_t kMinIndistN = 6;      // exhaustive kernel floor
inline constexpr std::uint32_t kMaxIndistN = 10;     // |V1| = 181,440
inline constexpr std::uint32_t kMaxRankMN = 8;       // dim B_8 = 4140
inline constexpr std::uint32_t kMaxRankEN = 10;      // dim 9!! = 945
inline constexpr std::uint32_t kMaxInfoN = 8;        // B_8 partitions
// Implicit simulation is O(n) state but Θ(n) rounds of O(frontier) work;
// 2^20 vertices is the largest size the daemon can serve interactively.
inline constexpr std::uint32_t kMinSimImplicitN = 6;
inline constexpr std::uint32_t kMaxSimImplicitN = 1u << 20;
// A rank tile is O(tile_rows * B_n) work; B_8 columns at 4096 rows is the
// largest tile the daemon can generate and rank interactively.
inline constexpr std::uint32_t kMaxRankTileRows = 4096;
// A best-strategy search runs budget evaluations over the exhaustive
// instance space (|V1| + |V2| engine runs each) plus one Theorem 3.1
// certificate per improvement; n = 7 at 512 evaluations is the largest cell
// that stays interactive cold. The bounds keep the handler a pure, bounded
// function of the request.
inline constexpr std::uint32_t kMinSearchN = 6;
inline constexpr std::uint32_t kMaxSearchN = 7;
inline constexpr std::uint32_t kMaxSearchRounds = 3;
inline constexpr std::uint32_t kMaxSearchBuckets = 16;
inline constexpr std::uint32_t kMaxSearchBudget = 512;

}  // namespace bcclb

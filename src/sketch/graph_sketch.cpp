#include "sketch/graph_sketch.h"

#include "common/check.h"

namespace bcclb {

GraphSketch::GraphSketch(std::size_t n, std::uint64_t seed, unsigned copies)
    : n_(n), seed_(seed) {
  BCCLB_REQUIRE(n >= 2, "need at least 2 vertices");
  BCCLB_REQUIRE(copies >= 1, "need at least one copy");
  samplers_.reserve(copies);
  for (unsigned k = 0; k < copies; ++k) {
    samplers_.emplace_back(L0Params{static_cast<std::uint64_t>(n) * n, seed, k});
  }
}

GraphSketch GraphSketch::of_vertex(std::size_t n, VertexId v,
                                   const std::vector<VertexId>& neighbors, std::uint64_t seed,
                                   unsigned copies) {
  GraphSketch gs(n, seed, copies);
  for (VertexId w : neighbors) {
    BCCLB_REQUIRE(w < n && w != v, "bad neighbor");
    const VertexId lo = std::min(v, w), hi = std::max(v, w);
    const std::uint64_t index = static_cast<std::uint64_t>(lo) * n + hi;
    const std::int64_t sign = (v == lo) ? 1 : -1;
    for (auto& s : gs.samplers_) s.update(index, sign);
  }
  return gs;
}

void GraphSketch::merge(const GraphSketch& other) {
  BCCLB_REQUIRE(n_ == other.n_ && seed_ == other.seed_ &&
                    samplers_.size() == other.samplers_.size(),
                "incompatible graph sketches");
  for (std::size_t k = 0; k < samplers_.size(); ++k) samplers_[k].merge(other.samplers_[k]);
}

std::optional<Edge> GraphSketch::sample_edge(unsigned copy) const {
  BCCLB_REQUIRE(copy < samplers_.size(), "copy out of range");
  const auto idx = samplers_[copy].sample();
  if (!idx) return std::nullopt;
  const VertexId u = static_cast<VertexId>(*idx / n_);
  const VertexId v = static_cast<VertexId>(*idx % n_);
  if (u >= v || v >= n_) return std::nullopt;  // not a valid edge index
  return Edge(u, v);
}

std::vector<std::uint64_t> GraphSketch::serialize() const {
  std::vector<std::uint64_t> words;
  for (const auto& s : samplers_) {
    const auto sw = s.serialize();
    words.insert(words.end(), sw.begin(), sw.end());
  }
  return words;
}

GraphSketch GraphSketch::deserialize(std::size_t n, std::uint64_t seed, unsigned copies,
                                     const std::vector<std::uint64_t>& words) {
  GraphSketch gs(n, seed, copies);
  std::size_t at = 0;
  gs.samplers_.clear();
  for (unsigned k = 0; k < copies; ++k) {
    gs.samplers_.push_back(L0Sampler::deserialize(
        L0Params{static_cast<std::uint64_t>(n) * n, seed, k}, words, at));
  }
  BCCLB_REQUIRE(at == words.size(), "trailing bytes in sketch serialization");
  return gs;
}

std::size_t GraphSketch::size_bits() const {
  std::size_t bits = 0;
  for (const auto& s : samplers_) bits += s.size_bits();
  return bits;
}

}  // namespace bcclb

// AGM graph sketches: linear sketches of vertex incidence vectors.
//
// Edge {u, v} with u < v has universe index u*n + v. Vertex u contributes +1
// and vertex v contributes -1, so summing the sketches of a component's
// vertices cancels internal edges and leaves exactly the boundary — sampling
// the merged sketch returns an outgoing edge, which drives the Boruvka
// phases of the sketch-based connectivity upper bound (E9).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "sketch/l0_sampler.h"

namespace bcclb {

class GraphSketch {
 public:
  // `copies` independent samplers; copy k is consumed by Boruvka phase k.
  GraphSketch(std::size_t n, std::uint64_t seed, unsigned copies);

  // Sketch of a single vertex's incidence vector.
  static GraphSketch of_vertex(std::size_t n, VertexId v,
                               const std::vector<VertexId>& neighbors, std::uint64_t seed,
                               unsigned copies);

  void merge(const GraphSketch& other);

  // Samples an edge from copy k; nullopt on sketch failure or empty boundary.
  std::optional<Edge> sample_edge(unsigned copy) const;

  unsigned num_copies() const { return static_cast<unsigned>(samplers_.size()); }
  std::size_t n() const { return n_; }

  std::vector<std::uint64_t> serialize() const;
  static GraphSketch deserialize(std::size_t n, std::uint64_t seed, unsigned copies,
                                 const std::vector<std::uint64_t>& words);
  std::size_t size_bits() const;

 private:
  std::size_t n_;
  std::uint64_t seed_;
  std::vector<L0Sampler> samplers_;
};

}  // namespace bcclb

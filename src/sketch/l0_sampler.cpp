#include "sketch/l0_sampler.h"

#include <bit>

#include "common/check.h"
#include "common/mathutil.h"

namespace bcclb {

namespace {

constexpr std::uint64_t kMersenne61 = (1ULL << 61) - 1;

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t hash3(std::uint64_t seed, std::uint64_t copy, std::uint64_t x) {
  return mix64(mix64(seed ^ (copy * 0x9e3779b97f4a7c15ULL)) ^ x);
}

std::uint64_t mod_mersenne61(unsigned __int128 x) {
  std::uint64_t lo = static_cast<std::uint64_t>(x & kMersenne61);
  std::uint64_t hi = static_cast<std::uint64_t>(x >> 61);
  std::uint64_t r = lo + hi;
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

std::uint64_t mulmod61(std::uint64_t a, std::uint64_t b) {
  return mod_mersenne61(static_cast<unsigned __int128>(a) * b);
}

std::uint64_t powmod61(std::uint64_t base, std::uint64_t exp) {
  std::uint64_t r = 1;
  base %= kMersenne61;
  while (exp) {
    if (exp & 1) r = mulmod61(r, base);
    base = mulmod61(base, base);
    exp >>= 1;
  }
  return r;
}

}  // namespace

L0Sampler::L0Sampler(const L0Params& params) : params_(params) {
  BCCLB_REQUIRE(params.universe >= 1, "universe must be nonempty");
  const unsigned levels = ceil_log2(params.universe) + 2;
  levels_.resize(levels);
  z_ = 2 + hash3(params.seed, params.copy, 0x5eedf00dULL) % (kMersenne61 - 3);
}

unsigned L0Sampler::level_of(std::uint64_t index) const {
  const std::uint64_t h = hash3(params_.seed, params_.copy, index);
  const unsigned lz = static_cast<unsigned>(std::countl_zero(h | 1));
  return lz < levels_.size() - 1 ? lz : static_cast<unsigned>(levels_.size() - 1);
}

void L0Sampler::update(std::uint64_t index, std::int64_t delta) {
  BCCLB_REQUIRE(index < params_.universe, "index out of range");
  const unsigned top = level_of(index);
  // The item participates in all levels 0..top (geometric subsampling).
  const std::uint64_t zi = powmod61(z_, index);
  for (unsigned lvl = 0; lvl <= top; ++lvl) {
    Level& l = levels_[lvl];
    l.count += delta;
    l.index_sum += static_cast<__int128>(delta) * static_cast<__int128>(index);
    const std::uint64_t term = mulmod61(
        static_cast<std::uint64_t>((delta % static_cast<std::int64_t>(kMersenne61) +
                                    static_cast<std::int64_t>(kMersenne61)) %
                                   static_cast<std::int64_t>(kMersenne61)),
        zi);
    l.fingerprint = (l.fingerprint + term) % kMersenne61;
  }
}

void L0Sampler::merge(const L0Sampler& other) {
  BCCLB_REQUIRE(params_.universe == other.params_.universe &&
                    params_.seed == other.params_.seed && params_.copy == other.params_.copy,
                "cannot merge sketches with different parameters");
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    levels_[i].count += other.levels_[i].count;
    levels_[i].index_sum += other.levels_[i].index_sum;
    levels_[i].fingerprint = (levels_[i].fingerprint + other.levels_[i].fingerprint) % kMersenne61;
  }
}

std::optional<std::uint64_t> L0Sampler::sample() const {
  // Prefer deeper (sparser) levels: they are one-sparse with good
  // probability when the support is large.
  for (std::size_t i = levels_.size(); i-- > 0;) {
    const Level& l = levels_[i];
    if (l.count == 0) continue;
    if (l.index_sum % l.count != 0) continue;
    const __int128 idx128 = l.index_sum / l.count;
    if (idx128 < 0 || idx128 >= static_cast<__int128>(params_.universe)) continue;
    const std::uint64_t idx = static_cast<std::uint64_t>(idx128);
    // Fingerprint confirmation: a truly one-sparse level with multiplicity c
    // at idx has fingerprint c * z^idx.
    const std::uint64_t c_mod = static_cast<std::uint64_t>(
        (l.count % static_cast<std::int64_t>(kMersenne61) +
         static_cast<std::int64_t>(kMersenne61)) %
        static_cast<std::int64_t>(kMersenne61));
    if (l.fingerprint == mulmod61(c_mod, powmod61(z_, idx))) return idx;
  }
  return std::nullopt;
}

bool L0Sampler::appears_zero() const {
  for (const Level& l : levels_) {
    if (l.count != 0 || l.fingerprint != 0) return false;
  }
  return true;
}

std::vector<std::uint64_t> L0Sampler::serialize() const {
  // Per level: count (64), index_sum low/high (128), fingerprint (64).
  std::vector<std::uint64_t> words;
  words.reserve(levels_.size() * 4);
  for (const Level& l : levels_) {
    words.push_back(static_cast<std::uint64_t>(l.count));
    words.push_back(static_cast<std::uint64_t>(static_cast<unsigned __int128>(l.index_sum)));
    words.push_back(
        static_cast<std::uint64_t>(static_cast<unsigned __int128>(l.index_sum) >> 64));
    words.push_back(l.fingerprint);
  }
  return words;
}

L0Sampler L0Sampler::deserialize(const L0Params& params, const std::vector<std::uint64_t>& words,
                                 std::size_t& at) {
  L0Sampler s(params);
  for (Level& l : s.levels_) {
    BCCLB_REQUIRE(at + 4 <= words.size(), "truncated sketch serialization");
    l.count = static_cast<std::int64_t>(words[at++]);
    unsigned __int128 sum = words[at++];
    sum |= static_cast<unsigned __int128>(words[at++]) << 64;
    l.index_sum = static_cast<__int128>(sum);
    l.fingerprint = words[at++];
  }
  return s;
}

std::size_t L0Sampler::size_bits() const {
  // A tight implementation ships, per level, count (O(log n) bits, we charge
  // 32), index_sum (2 log U <= 64) and a 61-bit fingerprint.
  return levels_.size() * (32 + 64 + 61);
}

}  // namespace bcclb

// ℓ0-samplers over a signed-multiplicity vector (Ahn–Guha–McGregor style).
//
// The paper's tightness discussion (Section 1.1) cites sketch-based O(log n)
// BCC(1) connectivity upper bounds; we realize the randomized variant: each
// vertex sketches its incidence vector, sketches add linearly, and a merged
// component sketch returns a uniformly-ish random outgoing edge. The sampler
// subsamples the universe at geometric rates and keeps a one-sparse recovery
// triple (count, index-sum, fingerprint) per level.
//
// All hash material derives from a seed, so vertices sharing public coins
// build identical samplers — exactly the public-coin BCC model.
#pragma once

#include <cstdint>
#include <optional>

#include <vector>

namespace bcclb {

struct L0Params {
  std::uint64_t universe = 0;  // indices are in [0, universe)
  std::uint64_t seed = 0;      // shared hash seed (public coins)
  std::uint32_t copy = 0;      // which independent copy; distinct copies use
                               // independent hash material
};

class L0Sampler {
 public:
  explicit L0Sampler(const L0Params& params);

  // Adds delta (typically ±1) to coordinate `index`.
  void update(std::uint64_t index, std::int64_t delta);

  // Linear merge; parameters must match.
  void merge(const L0Sampler& other);

  // Recovers some nonzero coordinate if any level is exactly one-sparse.
  // nullopt means the sketch failed (or the vector is zero).
  std::optional<std::uint64_t> sample() const;

  // True when every level is empty — the zero vector never false-negatives,
  // but a nonzero vector can collide to zero only with negligible
  // fingerprint probability.
  bool appears_zero() const;

  const L0Params& params() const { return params_; }
  std::size_t num_levels() const { return levels_.size(); }

  // Serialization to 64-bit words (for broadcasting through the BCC
  // simulator) and the exact bit size a real implementation would ship.
  std::vector<std::uint64_t> serialize() const;
  static L0Sampler deserialize(const L0Params& params,
                               const std::vector<std::uint64_t>& words, std::size_t& at);
  std::size_t size_bits() const;

 private:
  struct Level {
    std::int64_t count = 0;
    __int128 index_sum = 0;
    std::uint64_t fingerprint = 0;  // mod 2^61 - 1

    friend bool operator==(const Level&, const Level&) = default;
  };

  // Highest level this index belongs to (it belongs to all levels <= this).
  unsigned level_of(std::uint64_t index) const;

  L0Params params_;
  std::vector<Level> levels_;
  std::uint64_t z_ = 0;  // fingerprint base, derived from seed/copy
};

}  // namespace bcclb

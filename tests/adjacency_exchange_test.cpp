// Tests for the universal adjacency-exchange algorithm and its predicates
// (the Θ(n/b) ceiling over the paper's entire landscape; [DKO14]'s
// K4-detection bound makes it optimal for subgraph detection).
#include <gtest/gtest.h>

#include "bcc/algorithms/adjacency_exchange.h"
#include "bcc/algorithms/kt0_bootstrap.h"
#include "common/random.h"
#include "graph/components.h"
#include "graph/generators.h"

namespace bcclb {
namespace {

RunResult run_exchange(const Graph& g, unsigned b, GraphPredicate pred) {
  BccSimulator sim(BccInstance::kt1(g), b);
  return sim.run(adjacency_exchange_factory(std::move(pred)),
                 AdjacencyExchangeAlgorithm::rounds_needed(g.num_vertices(), b) + 1);
}

TEST(AdjacencyExchange, ReconstructionIsExactForAnyPredicate) {
  // The "count edges" predicate pins the reconstruction: its value must be
  // the true edge count parity on every random graph.
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = random_gnp(12, 0.3, rng);
    const std::size_t want = g.num_edges();
    const RunResult r = run_exchange(g, 4, [want](const Graph& got) {
      return got.num_edges() == want && got.is_regular(0) == (want == 0);
    });
    EXPECT_TRUE(r.all_finished);
    EXPECT_TRUE(r.decision) << "trial " << trial;
  }
}

TEST(AdjacencyExchange, ExactlyReconstructsTheGraph) {
  Rng rng(2);
  const Graph g = random_gnp(10, 0.25, rng);
  const RunResult r = run_exchange(g, 2, [&g](const Graph& got) { return got == g; });
  EXPECT_TRUE(r.decision);
}

TEST(AdjacencyExchange, RoundsAreCeilNOverB) {
  Rng rng(3);
  const Graph g = random_gnp(24, 0.2, rng);
  for (unsigned b : {1u, 3u, 8u, 24u}) {
    const RunResult r = run_exchange(g, b, connectivity_predicate());
    EXPECT_EQ(r.rounds_executed, (24 + b - 1) / b) << "b=" << b;
  }
}

TEST(AdjacencyExchange, ConnectivityAgreesWithReference) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_gnp(14, 1.4 / 14.0, rng);
    EXPECT_EQ(run_exchange(g, 4, connectivity_predicate()).decision, is_connected(g));
  }
}

TEST(K4Detection, BruteForceReference) {
  Graph k4(5);
  for (VertexId a = 0; a < 4; ++a) {
    for (VertexId b = a + 1; b < 4; ++b) k4.add_edge(a, b);
  }
  EXPECT_TRUE(graph_has_k4(k4));
  Rng rng(5);
  EXPECT_FALSE(graph_has_k4(random_one_cycle(8, rng).to_graph()));
  // K4 minus one edge is K4-free.
  Graph almost(4);
  almost.add_edge(0, 1);
  almost.add_edge(0, 2);
  almost.add_edge(0, 3);
  almost.add_edge(1, 2);
  almost.add_edge(1, 3);
  EXPECT_FALSE(graph_has_k4(almost));
}

TEST(K4Detection, DistributedMatchesLocal) {
  Rng rng(6);
  for (double p : {0.2, 0.4, 0.6}) {
    const Graph g = random_gnp(12, p, rng);
    EXPECT_EQ(run_exchange(g, 4, k4_free_predicate()).decision, !graph_has_k4(g)) << p;
  }
}

TEST(DiameterPredicate, KnownValues) {
  EXPECT_TRUE(diameter_at_most_predicate(9)(path_graph(10)));
  EXPECT_FALSE(diameter_at_most_predicate(8)(path_graph(10)));
  // Disconnected graphs fail every finite bound.
  EXPECT_FALSE(diameter_at_most_predicate(100)(Graph(4)));
  Rng rng(7);
  const Graph cyc = random_one_cycle(12, rng).to_graph();
  EXPECT_TRUE(diameter_at_most_predicate(6)(cyc));
  EXPECT_FALSE(diameter_at_most_predicate(5)(cyc));
}

TEST(AdjacencyExchange, RequiresKt1ButBootstrapLiftsIt) {
  Rng rng(8);
  const Graph g = random_gnp(10, 0.3, rng);
  const BccInstance kt0 = BccInstance::random_kt0(g, rng);
  {
    BccSimulator sim(kt0, 4);
    EXPECT_THROW(sim.run(adjacency_exchange_factory(connectivity_predicate()), 10),
                 std::invalid_argument);
  }
  {
    BccSimulator sim(kt0, 4);
    const RunResult r =
        sim.run(kt0_bootstrap(adjacency_exchange_factory(connectivity_predicate())),
                Kt0BootstrapAlgorithm::bootstrap_rounds(10, 4) +
                    AdjacencyExchangeAlgorithm::rounds_needed(10, 4) + 1);
    EXPECT_TRUE(r.all_finished);
    EXPECT_EQ(r.decision, is_connected(g));
  }
}

}  // namespace
}  // namespace bcclb

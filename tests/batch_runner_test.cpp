// Determinism regression for BatchRunner: serial and parallel execution must
// be bit-identical — same transcripts, same decisions, same bit counts, in
// the same order — for any thread count, in both public- and private-coin
// modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "bcc/algorithms/boruvka.h"
#include "bcc/algorithms/sketch_connectivity.h"
#include "bcc/batch_runner.h"
#include "common/random.h"
#include "graph/generators.h"

namespace bcclb {
namespace {

std::vector<BatchJob> make_jobs(const PublicCoins* coins) {
  // A heterogeneous batch: deterministic Boruvka runs, public-coin sketch
  // runs, and private-coin sketch runs, over instances of varying size and
  // density (connected and disconnected).
  Rng rng(42);
  std::vector<BatchJob> jobs;
  for (std::size_t n : {4, 7, 10, 13}) {
    const BccInstance instance = BccInstance::kt1(random_gnp(n, 0.4, rng));
    jobs.push_back({instance, boruvka_factory(), 2, BoruvkaAlgorithm::max_rounds(n, 2),
                    CoinSpec::none()});
    jobs.push_back({instance, sketch_connectivity_factory(), 8,
                    SketchConnectivityAlgorithm::max_rounds(n, 8),
                    CoinSpec::public_coins(coins)});
    jobs.push_back({instance, sketch_connectivity_factory(), 8,
                    SketchConnectivityAlgorithm::max_rounds(n, 8),
                    CoinSpec::private_coins(/*seed=*/1000 + n)});
  }
  return jobs;
}

void expect_identical(const std::vector<RunResult>& a, const std::vector<RunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rounds_executed, b[i].rounds_executed) << "job " << i;
    EXPECT_EQ(a[i].decision, b[i].decision) << "job " << i;
    EXPECT_EQ(a[i].all_finished, b[i].all_finished) << "job " << i;
    EXPECT_EQ(a[i].vertex_decisions, b[i].vertex_decisions) << "job " << i;
    EXPECT_EQ(a[i].labels, b[i].labels) << "job " << i;
    EXPECT_EQ(a[i].total_bits_broadcast, b[i].total_bits_broadcast) << "job " << i;
    EXPECT_EQ(a[i].stats.total_bits, b[i].stats.total_bits) << "job " << i;
    EXPECT_EQ(a[i].stats.rounds, b[i].stats.rounds) << "job " << i;
    ASSERT_EQ(a[i].transcript.num_vertices(), b[i].transcript.num_vertices()) << "job " << i;
    for (VertexId v = 0; v < a[i].transcript.num_vertices(); ++v) {
      EXPECT_EQ(a[i].transcript.sent_string(v), b[i].transcript.sent_string(v))
          << "job " << i << " vertex " << v;
    }
  }
}

TEST(BatchRunner, ParallelBitIdenticalToSerialForAnyThreadCount) {
  const PublicCoins coins(2026, 4096);
  const std::vector<BatchJob> jobs = make_jobs(&coins);

  // Serial reference: one engine, a plain loop, job order.
  std::vector<RunResult> serial;
  RoundEngine engine;
  for (const BatchJob& job : jobs) {
    serial.push_back(
        engine.run(job.instance, job.bandwidth, job.factory, job.max_rounds, job.coins));
  }

  for (unsigned threads : {1u, 2u, 8u}) {
    const BatchRunner runner(threads);
    EXPECT_EQ(runner.num_threads(), threads);
    expect_identical(serial, runner.run(jobs));
  }
}

TEST(BatchRunner, RepeatedParallelRunsAreStable) {
  const PublicCoins coins(7, 4096);
  const std::vector<BatchJob> jobs = make_jobs(&coins);
  const BatchRunner runner(8);
  expect_identical(runner.run(jobs), runner.run(jobs));
}

TEST(BatchRunner, ForEachVisitsEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 8u}) {
    const BatchRunner runner(threads);
    std::vector<int> visits(257, 0);
    runner.for_each(visits.size(), [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < visits.size(); ++i) EXPECT_EQ(visits[i], 1) << i;
  }
}

TEST(BatchRunner, ForEachWithEngineMatchesSerialRuns) {
  Rng rng(9);
  std::vector<BccInstance> instances;
  for (std::size_t i = 0; i < 16; ++i) {
    instances.push_back(BccInstance::kt1(random_gnp(6 + (i % 4), 0.5, rng)));
  }
  const unsigned cap = BoruvkaAlgorithm::max_rounds(9, 2);

  std::vector<std::uint64_t> serial_bits(instances.size());
  RoundEngine engine;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    serial_bits[i] = engine.run(instances[i], 2, boruvka_factory(), cap).total_bits_broadcast;
  }

  for (unsigned threads : {2u, 8u}) {
    const BatchRunner runner(threads);
    std::vector<std::uint64_t> parallel_bits(instances.size());
    runner.for_each_with_engine(instances.size(), [&](std::size_t i, RoundEngine& eng) {
      parallel_bits[i] = eng.run(instances[i], 2, boruvka_factory(), cap).total_bits_broadcast;
    });
    EXPECT_EQ(parallel_bits, serial_bits);
  }
}

TEST(BatchRunner, LowestIndexExceptionWinsAndPoolSurvives) {
  const BatchRunner runner(8);
  // Several jobs throw; the rethrown exception must be the lowest-indexed
  // one (matching what a serial loop would hit first).
  try {
    runner.for_each(64, [&](std::size_t i) {
      if (i == 11 || i == 3 || i == 60) {
        throw std::runtime_error("job " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 3");
  }
  // The runner is unaffected by the failed batch.
  std::vector<int> visits(8, 0);
  runner.for_each(visits.size(), [&](std::size_t i) { ++visits[i]; });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(BatchRunner, EmptyBatchIsANoOp) {
  const BatchRunner runner(4);
  EXPECT_TRUE(runner.run({}).empty());
  runner.for_each(0, [](std::size_t) { FAIL() << "body must not run"; });
}

// Saves and restores BCCLB_THREADS around a test so the suite never leaks
// environment state into later tests (or the developer's shell expectations).
class ThreadsEnvGuard {
 public:
  ThreadsEnvGuard() {
    const char* current = std::getenv("BCCLB_THREADS");
    if (current != nullptr) saved_ = current;
  }
  ~ThreadsEnvGuard() {
    if (saved_.has_value()) {
      setenv("BCCLB_THREADS", saved_->c_str(), 1);
    } else {
      unsetenv("BCCLB_THREADS");
    }
  }

  void set(const char* value) { setenv("BCCLB_THREADS", value, 1); }
  void unset() { unsetenv("BCCLB_THREADS"); }

 private:
  std::optional<std::string> saved_;
};

TEST(BatchRunner, DefaultThreadsHonorsAValidOverride) {
  ThreadsEnvGuard env;
  env.set("12");
  EXPECT_EQ(BatchRunner::default_threads(), 12u);
  env.set("1");
  EXPECT_EQ(BatchRunner::default_threads(), 1u);
}

TEST(BatchRunner, DefaultThreadsClampsHugeValues) {
  ThreadsEnvGuard env;
  env.set("300");
  EXPECT_EQ(BatchRunner::default_threads(), 256u);
}

TEST(BatchRunner, DefaultThreadsIgnoresMalformedValues) {
  ThreadsEnvGuard env;
  env.unset();
  const unsigned fallback = BatchRunner::default_threads();
  EXPECT_GE(fallback, 1u);

  // Non-numeric, trailing garbage, empty, zero, negative, and overflowing
  // values must all fall back rather than crash or wrap around.
  for (const char* bad : {"abc", "7x", "", " 8", "0", "-3", "99999999999999999999"}) {
    env.set(bad);
    EXPECT_EQ(BatchRunner::default_threads(), fallback) << "BCCLB_THREADS='" << bad << "'";
  }
}

TEST(RetryBackoff, IsDeterministicBoundedAndDoubling) {
  BatchPolicy policy;
  policy.backoff_base_ns = 1'000'000;  // 1 ms
  policy.backoff_cap_ns = 16'000'000;
  policy.backoff_seed = 77;

  std::uint64_t previous_nominal = 0;
  for (unsigned retry = 1; retry <= 8; ++retry) {
    const std::uint64_t delay = retry_backoff_ns(policy, /*job=*/3, retry);
    // Same (policy, job, retry) -> same delay, always.
    EXPECT_EQ(delay, retry_backoff_ns(policy, 3, retry)) << retry;
    // Jittered into [nominal/2, nominal] where nominal doubles up to the cap.
    const std::uint64_t nominal =
        std::min(policy.backoff_cap_ns, policy.backoff_base_ns << (retry - 1));
    EXPECT_GE(delay, nominal / 2) << retry;
    EXPECT_LE(delay, nominal) << retry;
    EXPECT_GE(nominal, previous_nominal);
    previous_nominal = nominal;
  }
}

TEST(RetryBackoff, ZeroBaseMeansImmediateRetry) {
  BatchPolicy policy;  // backoff_base_ns defaults to 0
  policy.max_retries = 3;
  EXPECT_EQ(retry_backoff_ns(policy, 0, 1), 0u);
  EXPECT_EQ(retry_backoff_ns(policy, 5, 4), 0u);
  // retry 0 is the initial attempt: never a sleep, whatever the base.
  policy.backoff_base_ns = 1'000'000;
  EXPECT_EQ(retry_backoff_ns(policy, 0, 0), 0u);
}

TEST(RetryBackoff, JitterDecorrelatesJobsAndSeeds) {
  BatchPolicy policy;
  policy.backoff_base_ns = 1'000'000;
  policy.backoff_seed = 1;
  // With a 500k-wide jitter window, distinct jobs (and seeds) landing on the
  // exact same delay for all of retries 1..4 would defeat the point of
  // jitter: thundering-herd retries.
  bool jobs_differ = false;
  bool seeds_differ = false;
  BatchPolicy other = policy;
  other.backoff_seed = 2;
  for (unsigned retry = 1; retry <= 4; ++retry) {
    jobs_differ |= retry_backoff_ns(policy, 0, retry) != retry_backoff_ns(policy, 1, retry);
    seeds_differ |= retry_backoff_ns(policy, 0, retry) != retry_backoff_ns(other, 0, retry);
  }
  EXPECT_TRUE(jobs_differ);
  EXPECT_TRUE(seeds_differ);
}

TEST(RetryBackoff, SaturatesInsteadOfOverflowing) {
  BatchPolicy policy;
  policy.backoff_base_ns = UINT64_MAX / 2;
  policy.backoff_cap_ns = UINT64_MAX;
  // A shift that would overflow must clamp to the cap, not wrap to a tiny
  // (or zero) delay.
  const std::uint64_t delay = retry_backoff_ns(policy, 0, 40);
  EXPECT_GE(delay, policy.backoff_cap_ns / 2);
}

TEST(BatchReport, RetryExhaustionSurfacesLastErrorWithJobIndexIntact) {
  Rng rng(71);
  std::vector<BatchJob> jobs;
  for (std::size_t n : {6, 7, 8, 9}) {
    const BccInstance instance = BccInstance::kt1(random_gnp(n, 0.6, rng));
    jobs.push_back({instance, boruvka_factory(), 2, BoruvkaAlgorithm::max_rounds(n, 2),
                    CoinSpec::none()});
  }
  // Job 2 carries a persistent fault: the plan re-fires on every attempt, so
  // the retry budget (and its backoff schedule) is fully consumed.
  jobs[2].faults.byzantine(0, 0, 0, /*bits=*/10);

  BatchPolicy policy;
  policy.max_retries = 2;
  policy.backoff_base_ns = 50'000;  // 50 us: real sleeps, negligible runtime
  policy.backoff_seed = 9;
  const BatchReport report = BatchRunner(2).run_reported(jobs, policy);

  EXPECT_EQ(report.first_failure(), 2u);
  EXPECT_FALSE(report.jobs[2].ok());
  EXPECT_EQ(report.jobs[2].attempts, 3u);  // initial + 2 retries
  EXPECT_FALSE(report.jobs[2].error.empty());
  EXPECT_FALSE(report.jobs[2].error_kind.empty());
  for (unsigned i : {0u, 1u, 3u}) {
    EXPECT_TRUE(report.jobs[i].ok()) << "job " << i;
    EXPECT_EQ(report.jobs[i].backoff_ns_total, 0u) << "job " << i;
  }
  // The recorded sleep is exactly the deterministic schedule, so a replayed
  // batch (same policy, same jobs) waits the same total.
  const std::uint64_t expected =
      retry_backoff_ns(policy, 2, 1) + retry_backoff_ns(policy, 2, 2);
  EXPECT_EQ(report.jobs[2].backoff_ns_total, expected);
  EXPECT_GT(expected, 0u);
}

TEST(Coalesce, PlanAliasesDuplicatesToTheFirstOccurrence) {
  const std::uint64_t keys[] = {10, 20, 10, 30, 20, 10};
  const CoalescePlan plan = coalesce_by_key(keys);
  EXPECT_EQ(plan.unique, (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_EQ(plan.alias_of, (std::vector<std::size_t>{0, 1, 0, 3, 1, 0}));
  EXPECT_EQ(plan.num_coalesced(), 3u);
}

TEST(Coalesce, AllUniqueAndAllIdenticalExtremes) {
  const std::uint64_t distinct[] = {1, 2, 3};
  const CoalescePlan none = coalesce_by_key(distinct);
  EXPECT_EQ(none.unique.size(), 3u);
  EXPECT_EQ(none.num_coalesced(), 0u);

  const std::uint64_t same[] = {7, 7, 7, 7};
  const CoalescePlan all = coalesce_by_key(same);
  EXPECT_EQ(all.unique, (std::vector<std::size_t>{0}));
  EXPECT_EQ(all.num_coalesced(), 3u);

  const CoalescePlan empty = coalesce_by_key(std::span<const std::uint64_t>{});
  EXPECT_TRUE(empty.unique.empty());
  EXPECT_TRUE(empty.alias_of.empty());
  EXPECT_EQ(empty.num_coalesced(), 0u);
}

TEST(Coalesce, ForEachCoalescedExecutesEachKeyExactlyOnce) {
  std::vector<std::uint64_t> keys;
  for (std::size_t i = 0; i < 40; ++i) keys.push_back(i % 7);
  std::vector<std::atomic<int>> executions(40);
  const CoalescePlan plan = BatchRunner(4).for_each_coalesced(
      keys, [&](std::size_t i) { executions[i].fetch_add(1); });
  ASSERT_EQ(plan.unique.size(), 7u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const bool is_first = i < 7;  // keys cycle 0..6, so first occurrences lead
    EXPECT_EQ(executions[i].load(), is_first ? 1 : 0) << "index " << i;
    EXPECT_EQ(plan.alias_of[i], i % 7) << "index " << i;
  }
}

}  // namespace
}  // namespace bcclb

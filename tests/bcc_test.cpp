// Tests for the BCC(b) model: messages, wirings, instances, simulator,
// transcripts and the min-ID flooding baseline.
#include <gtest/gtest.h>

#include "bcc/algorithms/min_id_flood.h"
#include "bcc/algorithms/two_cycle_adversaries.h"
#include "bcc/instance.h"
#include "bcc/message.h"
#include "bcc/simulator.h"
#include "bcc/transcript.h"
#include "common/random.h"
#include "graph/components.h"
#include "graph/generators.h"

namespace bcclb {
namespace {

TEST(Message, SilentAndBits) {
  const Message s = Message::silent();
  EXPECT_TRUE(s.is_silent());
  EXPECT_EQ(s.num_bits(), 0u);
  EXPECT_EQ(s.to_string(), "_");
  EXPECT_EQ(s.as_char(), '_');
  EXPECT_THROW(s.value(), std::invalid_argument);

  const Message m = Message::bits(0b101, 3);
  EXPECT_FALSE(m.is_silent());
  EXPECT_EQ(m.num_bits(), 3u);
  EXPECT_TRUE(m.bit(0));
  EXPECT_FALSE(m.bit(1));
  EXPECT_TRUE(m.bit(2));
  EXPECT_EQ(m.to_string(), "101");
}

TEST(Message, Validation) {
  EXPECT_THROW(Message::bits(4, 2), std::invalid_argument);
  EXPECT_THROW(Message::bits(0, 0), std::invalid_argument);
  EXPECT_THROW(Message::bits(0, 65), std::invalid_argument);
  EXPECT_THROW(Message::one_bit(true).bit(1), std::invalid_argument);
  EXPECT_THROW(Message::bits(3, 2).as_char(), std::invalid_argument);
}

TEST(Wiring, Kt1LayoutIsIdOrder) {
  const Wiring w = Wiring::kt1(5);
  EXPECT_EQ(w.peer(0, 0), 1u);
  EXPECT_EQ(w.peer(0, 3), 4u);
  EXPECT_EQ(w.peer(3, 0), 0u);
  EXPECT_EQ(w.peer(3, 3), 4u);
  EXPECT_EQ(w.port_at(3, 4), 3u);
  EXPECT_EQ(w.port_at(4, 3), 3u);
}

TEST(Wiring, RandomKt0IsValidBijection) {
  Rng rng(8);
  const Wiring w = Wiring::random_kt0(9, rng);
  for (VertexId v = 0; v < 9; ++v) {
    std::vector<bool> seen(9, false);
    for (Port p = 0; p < 8; ++p) {
      const VertexId u = w.peer(v, p);
      EXPECT_NE(u, v);
      EXPECT_FALSE(seen[u]);
      seen[u] = true;
      EXPECT_EQ(w.port_at(v, u), p);
    }
  }
}

TEST(Wiring, RejectsBadTables) {
  // Row not a bijection onto V \ {v}.
  EXPECT_THROW(Wiring({{1, 1}, {0, 2}, {0, 1}}), std::invalid_argument);
  EXPECT_THROW(Wiring({{0, 2}, {0, 2}, {0, 1}}), std::invalid_argument);  // self port
  EXPECT_THROW(Wiring({{1}, {0, 2}, {0, 1}}), std::invalid_argument);     // short row
}

TEST(Instance, InputPortsMatchInputEdges) {
  Graph g(4);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  const BccInstance inst = BccInstance::kt1(g);
  EXPECT_EQ(inst.input_ports(0), std::vector<Port>{1});      // port 1 of 0 -> 2
  EXPECT_EQ(inst.input_ports(2), (std::vector<Port>{0, 2}));  // to 0 and 3
  EXPECT_TRUE(inst.input_ports(1).empty());
}

TEST(Instance, UniqueIdsEnforced) {
  Graph g(3);
  EXPECT_THROW(BccInstance(Wiring::kt1(3), g, KnowledgeMode::kKT1, {1, 1, 2}),
               std::invalid_argument);
}

TEST(Simulator, BandwidthEnforced) {
  // An algorithm that broadcasts 2 bits under a b=1 budget must be rejected.
  class Greedy final : public VertexAlgorithm {
   public:
    void init(const LocalView&) override {}
    Message broadcast(unsigned) override { return Message::bits(3, 2); }
    void receive(unsigned, std::span<const Message>) override {}
    bool finished() const override { return false; }
    bool decide() const override { return true; }
  };
  Graph g(3);
  g.add_edge(0, 1);
  const BccInstance inst = BccInstance::kt1(g);
  BccSimulator sim(inst, 1);
  EXPECT_THROW(sim.run([] { return std::make_unique<Greedy>(); }, 1), std::invalid_argument);
}

TEST(Simulator, TranscriptRecordsBroadcasts) {
  Rng rng(3);
  const auto cs = random_one_cycle(6, rng);
  const BccInstance inst = BccInstance::kt1(cs.to_graph());
  BccSimulator sim(inst, 1);
  const RunResult r = sim.run(
      two_cycle_adversary_factory(AdversaryKind::kIdBits, 3, always_yes_rule()), 3);
  EXPECT_EQ(r.rounds_executed, 3u);
  EXPECT_EQ(r.transcript.num_rounds(), 3u);
  // kIdBits: vertex v broadcasts bit t of its ID (= v).
  EXPECT_EQ(r.transcript.sent(5, 0).as_char(), '1');
  EXPECT_EQ(r.transcript.sent(5, 2).as_char(), '1');
  EXPECT_EQ(r.transcript.sent(4, 0).as_char(), '0');
  EXPECT_EQ(r.transcript.sent_string(2), "010");
  EXPECT_EQ(r.transcript.edge_label(2, 5), "010101");
}

TEST(Simulator, DeterministicAcrossRuns) {
  Rng rng(4);
  const auto cs = random_one_cycle(8, rng);
  const BccInstance inst = BccInstance::kt1(cs.to_graph());
  BccSimulator sim(inst, 4);
  const RunResult a = sim.run(min_id_flood_factory(), 8);
  const RunResult b = sim.run(min_id_flood_factory(), 8);
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.total_bits_broadcast, b.total_bits_broadcast);
}

TEST(Simulator, DecisionIsAndOverVertices) {
  // One NO vertex makes the system answer NO. parity_rule varies by vertex.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const BccInstance inst = BccInstance::kt1(g);
  BccSimulator sim(inst, 1);
  const RunResult r = sim.run(
      two_cycle_adversary_factory(AdversaryKind::kIdBits, 2, parity_rule()), 2);
  bool all = true;
  for (bool d : r.vertex_decisions) all = all && d;
  EXPECT_EQ(r.decision, all);
}

class FloodCorrectness : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FloodCorrectness, MatchesBfsOnRandomSparseGraphs) {
  const std::size_t n = GetParam();
  Rng rng(n * 17 + 1);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = random_gnp(n, 1.5 / static_cast<double>(n), rng);
    const BccInstance inst = BccInstance::kt1(g);
    BccSimulator sim(inst, 8);
    const RunResult r = sim.run(min_id_flood_factory(), MinIdFloodAlgorithm::rounds_needed(n));
    EXPECT_TRUE(r.all_finished);
    EXPECT_EQ(r.decision, is_connected(g)) << "n=" << n << " trial=" << trial;
    const auto labels = component_labels(g);
    for (VertexId v = 0; v < n; ++v) {
      ASSERT_TRUE(r.labels[v].has_value());
      EXPECT_EQ(*r.labels[v], labels[v]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FloodCorrectness, ::testing::Values(4, 8, 16, 32));

TEST(Flood, RequiresAdequateBandwidth) {
  Graph g(40);
  const BccInstance inst = BccInstance::kt1(g);
  BccSimulator sim(inst, 2);  // IDs up to 39 need 6 bits
  EXPECT_THROW(sim.run(min_id_flood_factory(), 40), std::invalid_argument);
}

TEST(Flood, WorksInKt0Too) {
  // Flooding never reads IDs behind ports, so KT-0 suffices.
  Rng rng(5);
  const auto cs = random_two_cycle(10, rng);
  const BccInstance inst = BccInstance::random_kt0(cs.to_graph(), rng);
  BccSimulator sim(inst, 4);
  const RunResult r = sim.run(min_id_flood_factory(), 10);
  EXPECT_FALSE(r.decision);  // two cycles: disconnected
}

TEST(VertexStateSignature, DiffersAcrossDifferentInputs) {
  Rng rng(6);
  const auto one = random_one_cycle(7, rng);
  const BccInstance i1 = BccInstance::kt1(one.to_graph());
  BccSimulator sim(i1, 4);
  const RunResult r = sim.run(min_id_flood_factory(), 7);
  // Same instance, same transcript: signatures are self-consistent.
  for (VertexId v = 0; v < 7; ++v) {
    EXPECT_EQ(vertex_state_signature(i1, r.transcript, v),
              vertex_state_signature(i1, r.transcript, v));
  }
}

}  // namespace
}  // namespace bcclb

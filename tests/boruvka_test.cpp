// Tests for Boruvka-over-broadcast: correctness across sizes and bandwidths,
// logarithmic phase growth, and ConnectedComponents label output.
#include <gtest/gtest.h>

#include <cmath>

#include "bcc/algorithms/boruvka.h"
#include "common/random.h"
#include "graph/components.h"
#include "graph/generators.h"

namespace bcclb {
namespace {

RunResult run_boruvka(const Graph& g, unsigned bandwidth) {
  const BccInstance inst = BccInstance::kt1(g);
  BccSimulator sim(inst, bandwidth);
  return sim.run(boruvka_factory(), BoruvkaAlgorithm::max_rounds(g.num_vertices(), bandwidth));
}

TEST(Boruvka, ConnectedCycle) {
  Rng rng(1);
  const auto cs = random_one_cycle(16, rng);
  const RunResult r = run_boruvka(cs.to_graph(), 8);
  EXPECT_TRUE(r.all_finished);
  EXPECT_TRUE(r.decision);
}

TEST(Boruvka, TwoCyclesDisconnected) {
  Rng rng(2);
  const auto cs = random_two_cycle(16, rng);
  const RunResult r = run_boruvka(cs.to_graph(), 8);
  EXPECT_FALSE(r.decision);
}

TEST(Boruvka, EmptyGraphAllIsolated) {
  const RunResult r = run_boruvka(Graph(8), 8);
  EXPECT_TRUE(r.all_finished);
  EXPECT_FALSE(r.decision);
}

TEST(Boruvka, RequiresKt1) {
  Rng rng(3);
  const auto cs = random_one_cycle(8, rng);
  const BccInstance inst = BccInstance::random_kt0(cs.to_graph(), rng);
  BccSimulator sim(inst, 8);
  EXPECT_THROW(sim.run(boruvka_factory(), 100), std::invalid_argument);
}

struct BoruvkaCase {
  std::size_t n;
  unsigned bandwidth;
};

class BoruvkaSweep : public ::testing::TestWithParam<BoruvkaCase> {};

TEST_P(BoruvkaSweep, MatchesBfsAndLabelsAreComponentMinima) {
  const auto [n, bandwidth] = GetParam();
  Rng rng(n * 31 + bandwidth);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = random_gnp(n, 1.2 / static_cast<double>(n), rng);
    const RunResult r = run_boruvka(g, bandwidth);
    EXPECT_TRUE(r.all_finished);
    EXPECT_EQ(r.decision, is_connected(g)) << "n=" << n << " b=" << bandwidth;
    const auto labels = component_labels(g);
    for (VertexId v = 0; v < n; ++v) {
      ASSERT_TRUE(r.labels[v].has_value());
      EXPECT_EQ(*r.labels[v], labels[v]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBandwidths, BoruvkaSweep,
    ::testing::Values(BoruvkaCase{6, 1}, BoruvkaCase{6, 4}, BoruvkaCase{12, 1},
                      BoruvkaCase{12, 8}, BoruvkaCase{24, 2}, BoruvkaCase{24, 16},
                      BoruvkaCase{48, 8}, BoruvkaCase{64, 8}));

TEST(Boruvka, RoundsScaleWithPhaseBudget) {
  // At b = 1 + ceil(log2 n), a phase is one round; rounds <= log2(n) + 2.
  for (std::size_t n : {8u, 16u, 32u, 64u}) {
    Rng rng(n);
    const auto cs = random_one_cycle(n, rng);
    const unsigned b = 1 + static_cast<unsigned>(std::ceil(std::log2(n)));
    const RunResult r = run_boruvka(cs.to_graph(), b);
    EXPECT_TRUE(r.decision);
    EXPECT_LE(r.rounds_executed, static_cast<unsigned>(std::log2(n)) + 2)
        << "n=" << n;
  }
}

TEST(Boruvka, NarrowBandwidthMultipliesRounds) {
  // The same phases at b = 1 cost (1 + ceil(log2 n)) rounds each.
  Rng rng(7);
  const auto cs = random_one_cycle(16, rng);
  const RunResult wide = run_boruvka(cs.to_graph(), 5);
  const RunResult narrow = run_boruvka(cs.to_graph(), 1);
  EXPECT_EQ(narrow.rounds_executed, wide.rounds_executed * 5);
}

TEST(Boruvka, PathGraphConnected) {
  const RunResult r = run_boruvka(path_graph(33), 8);
  EXPECT_TRUE(r.decision);
  for (const auto& l : r.labels) {
    ASSERT_TRUE(l.has_value());
    EXPECT_EQ(*l, 0u);
  }
}

TEST(Boruvka, ForestLabels) {
  Rng rng(9);
  const Graph f = random_forest(30, 3, rng);
  const RunResult r = run_boruvka(f, 8);
  EXPECT_FALSE(r.decision);
  const auto labels = component_labels(f);
  for (VertexId v = 0; v < 30; ++v) EXPECT_EQ(*r.labels[v], labels[v]);
}

}  // namespace
}  // namespace bcclb

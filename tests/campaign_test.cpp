// CampaignRunner: crash-recoverable checkpointed campaigns.
//
// The load-bearing properties, each pinned here:
//   - kill at any checkpoint boundary + resume == uninterrupted run,
//     bit-for-bit in campaign.txt and golden.json;
//   - corrupt snapshots and tampered artifacts are rejected with a typed
//     CheckpointError, never silently resumed;
//   - the memory budget sheds worker parallelism before refusing jobs, and
//     a refused job carries a ResourceBudgetError naming budget + footprint;
//   - job failures (typed errors, timeouts) cost their slot, not the
//     campaign, and resume re-runs exactly the unfinished jobs.
#include "core/campaign.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <memory>

#include <gtest/gtest.h>

#include "bcc/checkpoint.h"
#include "common/errors.h"

namespace bcclb {
namespace {

std::string test_dir() {
  const ::testing::TestInfo* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir() + "bcclb_campaign_" + info->test_suite_name() + "_" +
                    info->name();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string raw_read(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void raw_write(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A fast synthetic campaign: five jobs whose outputs are pure functions of
// the seed, mirroring how every real engine job behaves.
Campaign synthetic_campaign(std::uint64_t seed, std::size_t jobs = 5) {
  Campaign campaign;
  campaign.name = "synthetic";
  campaign.seed = seed;
  for (std::size_t j = 0; j < jobs; ++j) {
    campaign.jobs.push_back(
        {"job-" + std::to_string(j), 1024, [seed, j](const CampaignJobContext&) {
           CampaignJobResult out;
           out.output = "job " + std::to_string(j) + " of seed " + std::to_string(seed) +
                        " computed " + std::to_string(seed * 31 + j * 7) + "\n";
           return out;
         }});
  }
  return campaign;
}

TEST(Campaign, FreshRunWritesArtifactsCheckpointAndGolden) {
  const std::string dir = test_dir();
  CampaignConfig config;
  config.dir = dir;
  config.threads = 2;
  const Campaign campaign = synthetic_campaign(7);
  const CampaignReport report = CampaignRunner(config).run(campaign);

  EXPECT_TRUE(report.all_done());
  EXPECT_FALSE(report.interrupted);
  EXPECT_EQ(report.num_done, 5u);
  EXPECT_TRUE(file_exists(campaign_checkpoint_path(dir)));
  EXPECT_TRUE(file_exists(campaign_final_path(dir)));
  EXPECT_TRUE(file_exists(campaign_golden_path(dir)));
  for (const CampaignJob& job : campaign.jobs) {
    EXPECT_TRUE(file_exists(campaign_output_path(dir, job.name))) << job.name;
  }
  // Per-job artifacts are byte-exact and hash to the recorded digests.
  for (std::size_t i = 0; i < campaign.jobs.size(); ++i) {
    const std::string bytes = raw_read(campaign_output_path(dir, campaign.jobs[i].name));
    EXPECT_EQ(fnv1a(bytes), report.records[i].digest);
  }
}

TEST(Campaign, InMemoryRunProducesSameDigestsAsOnDisk) {
  const std::string dir = test_dir();
  CampaignConfig on_disk;
  on_disk.dir = dir;
  CampaignConfig in_memory;  // empty dir = no checkpoint, no files
  const Campaign campaign = synthetic_campaign(11);
  const CampaignReport a = CampaignRunner(on_disk).run(campaign);
  const CampaignReport b = CampaignRunner(in_memory).run(campaign);
  ASSERT_TRUE(a.all_done());
  ASSERT_TRUE(b.all_done());
  for (std::size_t i = 0; i < campaign.jobs.size(); ++i) {
    EXPECT_EQ(a.records[i].digest, b.records[i].digest) << i;
  }
}

TEST(Campaign, StopAtEveryCheckpointBoundaryThenResumeIsBitIdentical) {
  // Reference: uninterrupted run.
  const std::string base = test_dir();
  const Campaign campaign = synthetic_campaign(13);
  CampaignConfig ref_config;
  ref_config.dir = base + "/ref";
  ref_config.threads = 1;  // batch per job: every boundary is a kill point
  ASSERT_TRUE(CampaignRunner(ref_config).run(campaign).all_done());
  const std::string ref_final = raw_read(campaign_final_path(ref_config.dir));
  const std::string ref_golden = raw_read(campaign_golden_path(ref_config.dir));
  ASSERT_FALSE(ref_final.empty());

  for (unsigned stop_after = 1; stop_after <= 4; ++stop_after) {
    const std::string dir = base + "/stop" + std::to_string(stop_after);
    CampaignConfig interrupted;
    interrupted.dir = dir;
    interrupted.threads = 1;
    interrupted.stop_after_batches = stop_after;
    const CampaignReport first = CampaignRunner(interrupted).run(campaign);
    EXPECT_TRUE(first.interrupted);
    EXPECT_EQ(first.num_done, stop_after);
    EXPECT_EQ(first.num_pending, campaign.jobs.size() - stop_after);
    EXPECT_FALSE(file_exists(campaign_final_path(dir)));  // incomplete: no final artifact

    CampaignConfig resume;
    resume.dir = dir;
    resume.threads = 1;
    resume.resume = true;
    const CampaignReport second = CampaignRunner(resume).run(campaign);
    EXPECT_TRUE(second.all_done());
    EXPECT_EQ(second.resumed_jobs, stop_after);  // only unfinished jobs re-ran
    EXPECT_EQ(raw_read(campaign_final_path(dir)), ref_final) << "stop_after " << stop_after;
    EXPECT_EQ(raw_read(campaign_golden_path(dir)), ref_golden) << "stop_after " << stop_after;
  }
}

TEST(Campaign, InterruptFlagStopsBetweenBatchesAndFlushesCheckpoint) {
  const std::string dir = test_dir();
  volatile std::sig_atomic_t flag = 1;  // "signal already delivered"
  CampaignConfig config;
  config.dir = dir;
  config.interrupt = &flag;
  const Campaign campaign = synthetic_campaign(17);
  const CampaignReport report = CampaignRunner(config).run(campaign);
  EXPECT_TRUE(report.interrupted);
  EXPECT_EQ(report.num_pending, campaign.jobs.size());
  // The dirty-exit guarantee: a resumable manifest exists even though no
  // batch ever ran.
  ASSERT_TRUE(file_exists(campaign_checkpoint_path(dir)));

  flag = 0;
  CampaignConfig resume;
  resume.dir = dir;
  resume.resume = true;
  resume.interrupt = &flag;
  EXPECT_TRUE(CampaignRunner(resume).run(campaign).all_done());
}

TEST(Campaign, FreshRunRefusesToClobberExistingCheckpoint) {
  const std::string dir = test_dir();
  CampaignConfig config;
  config.dir = dir;
  const Campaign campaign = synthetic_campaign(19);
  ASSERT_TRUE(CampaignRunner(config).run(campaign).all_done());
  EXPECT_THROW(CampaignRunner(config).run(campaign), CheckpointError);
}

TEST(Campaign, ResumeWithoutCheckpointIsRefused) {
  const std::string dir = test_dir();
  CampaignConfig config;
  config.dir = dir;
  config.resume = true;
  EXPECT_THROW(CampaignRunner(config).run(synthetic_campaign(23)), CheckpointError);

  CampaignConfig memory_resume;
  memory_resume.resume = true;
  EXPECT_THROW(CampaignRunner(memory_resume).run(synthetic_campaign(23)), CheckpointError);
}

TEST(Campaign, TruncatedCheckpointIsRejectedNotResumed) {
  const std::string dir = test_dir();
  CampaignConfig config;
  config.dir = dir;
  config.stop_after_batches = 1;
  config.threads = 1;
  const Campaign campaign = synthetic_campaign(29);
  ASSERT_TRUE(CampaignRunner(config).run(campaign).interrupted);

  const std::string ckpt = campaign_checkpoint_path(dir);
  const std::string raw = raw_read(ckpt);
  raw_write(ckpt, raw.substr(0, raw.size() / 2));

  CampaignConfig resume;
  resume.dir = dir;
  resume.resume = true;
  try {
    CampaignRunner(resume).run(campaign);
    FAIL() << "truncated checkpoint was resumed";
  } catch (const CheckpointError& e) {
    EXPECT_STREQ(e.kind(), "CheckpointError");
  }
}

TEST(Campaign, GarbageCheckpointIsRejectedNotResumed) {
  const std::string dir = test_dir();
  std::filesystem::create_directories(dir + "/out");
  raw_write(campaign_checkpoint_path(dir), "not a checkpoint at all\n");

  CampaignConfig resume;
  resume.dir = dir;
  resume.resume = true;
  EXPECT_THROW(CampaignRunner(resume).run(synthetic_campaign(31)), CheckpointError);
}

TEST(Campaign, TamperedOutputArtifactIsRejectedNotResumed) {
  const std::string dir = test_dir();
  CampaignConfig config;
  config.dir = dir;
  config.stop_after_batches = 2;
  config.threads = 1;
  const Campaign campaign = synthetic_campaign(37);
  ASSERT_TRUE(CampaignRunner(config).run(campaign).interrupted);

  // Flip a byte in a finished job's artifact; its checkpointed digest no
  // longer matches, so resume must refuse rather than splice corrupt output
  // into "bit-identical" final artifacts.
  const std::string artifact = campaign_output_path(dir, campaign.jobs[0].name);
  std::string bytes = raw_read(artifact);
  ASSERT_FALSE(bytes.empty());
  bytes[0] ^= 0x01;
  raw_write(artifact, bytes);

  CampaignConfig resume;
  resume.dir = dir;
  resume.resume = true;
  try {
    CampaignRunner(resume).run(campaign);
    FAIL() << "tampered artifact was resumed";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("digest"), std::string::npos) << e.what();
  }
}

TEST(Campaign, CheckpointOfDifferentCampaignIsRefused) {
  const std::string dir = test_dir();
  CampaignConfig config;
  config.dir = dir;
  config.stop_after_batches = 1;
  config.threads = 1;
  ASSERT_TRUE(CampaignRunner(config).run(synthetic_campaign(41)).interrupted);

  CampaignConfig resume;
  resume.dir = dir;
  resume.resume = true;
  // Same shape, different seed — the snapshot describes different jobs.
  EXPECT_THROW(CampaignRunner(resume).run(synthetic_campaign(42)), CheckpointError);
  // Different job list length.
  EXPECT_THROW(CampaignRunner(resume).run(synthetic_campaign(41, 3)), CheckpointError);
}

TEST(Campaign, FailedAndTimedOutJobsAreIsolatedAndRerunOnResume) {
  const std::string dir = test_dir();
  auto fail_first_time = std::make_shared<std::atomic<int>>(0);
  Campaign campaign;
  campaign.name = "mixed";
  campaign.seed = 1;
  campaign.jobs.push_back({"ok", 0, [](const CampaignJobContext&) {
                             return CampaignJobResult{"fine\n", 0};
                           }});
  campaign.jobs.push_back({"flaky", 0, [fail_first_time](const CampaignJobContext&) {
                             if (fail_first_time->fetch_add(1) == 0) {
                               throw BandwidthViolationError("injected", {0, 3, 2});
                             }
                             return CampaignJobResult{"recovered\n", 0};
                           }});
  campaign.jobs.push_back({"slow", 0, [fail_first_time](const CampaignJobContext&) {
                             if (fail_first_time->load() <= 1) {
                               throw JobTimeoutError("deadline expired");
                             }
                             return CampaignJobResult{"fast now\n", 0};
                           }});

  CampaignConfig config;
  config.dir = dir;
  config.threads = 1;
  const CampaignReport first = CampaignRunner(config).run(campaign);
  EXPECT_EQ(first.num_done, 1u);
  EXPECT_EQ(first.num_failed, 1u);
  EXPECT_EQ(first.num_timed_out, 1u);
  EXPECT_EQ(first.records[1].state, CampaignJobState::kFailed);
  EXPECT_EQ(first.records[1].error_kind, "BandwidthViolationError");
  EXPECT_EQ(first.records[2].state, CampaignJobState::kTimedOut);
  EXPECT_EQ(first.records[2].error_kind, "JobTimeoutError");
  EXPECT_FALSE(file_exists(campaign_final_path(dir)));

  // Resume re-runs exactly the two unfinished jobs; the flaky ones heal.
  CampaignConfig resume;
  resume.dir = dir;
  resume.threads = 1;
  resume.resume = true;
  const CampaignReport second = CampaignRunner(resume).run(campaign);
  EXPECT_TRUE(second.all_done());
  EXPECT_EQ(second.resumed_jobs, 1u);
  EXPECT_EQ(second.records[1].attempts, 2u);
  EXPECT_TRUE(file_exists(campaign_final_path(dir)));
}

TEST(CampaignBudget, PlanShedsWorkersBeforeRefusing) {
  // Unlimited budget: full width.
  EXPECT_EQ(plan_campaign_workers({100, 100, 100}, 8, 0), 8u);
  // Budget fits exactly two of the heaviest jobs side by side.
  EXPECT_EQ(plan_campaign_workers({600, 400, 100}, 8, 1000), 2u);
  // Budget below two heaviest: shed to one worker — never refuse here.
  EXPECT_EQ(plan_campaign_workers({600, 400, 100}, 8, 700), 1u);
  // Everything fits: width bounded by max_workers, then by job count.
  EXPECT_EQ(plan_campaign_workers({10, 10, 10}, 2, 1000), 2u);
  EXPECT_EQ(plan_campaign_workers({10, 10}, 8, 1000), 2u);
  // Degenerate inputs.
  EXPECT_EQ(plan_campaign_workers({}, 4, 100), 4u);
  EXPECT_EQ(plan_campaign_workers({50}, 0, 100), 1u);
}

TEST(CampaignBudget, OversizedJobIsRefusedWithTypedErrorNamingBudgetAndFootprint) {
  const std::string dir = test_dir();
  Campaign campaign = synthetic_campaign(43, 3);
  campaign.jobs[1].est_bytes = 1 << 20;  // 1 MiB against a 4 KiB budget

  CampaignConfig config;
  config.dir = dir;
  config.threads = 4;
  config.mem_budget_bytes = 4096;
  const CampaignReport report = CampaignRunner(config).run(campaign);

  EXPECT_EQ(report.num_done, 2u);
  EXPECT_EQ(report.num_refused, 1u);
  const CampaignJobRecord& refused = report.records[1];
  EXPECT_EQ(refused.state, CampaignJobState::kRefused);
  EXPECT_EQ(refused.error_kind, "ResourceBudgetError");
  EXPECT_NE(refused.error.find(std::to_string(1 << 20)), std::string::npos) << refused.error;
  EXPECT_NE(refused.error.find("4096"), std::string::npos) << refused.error;
  // The two 1 KiB jobs still fit the 4 KiB budget side by side.
  EXPECT_EQ(report.planned_workers, 2u);
  // Refusal is not completion: no final artifacts.
  EXPECT_FALSE(file_exists(campaign_final_path(dir)));
}

TEST(CampaignBudget, ParseMemBytesIsStrict) {
  EXPECT_EQ(parse_mem_bytes("4096"), std::optional<std::uint64_t>(4096));
  EXPECT_EQ(parse_mem_bytes("2K"), std::optional<std::uint64_t>(2048));
  EXPECT_EQ(parse_mem_bytes("3M"), std::optional<std::uint64_t>(3ULL << 20));
  EXPECT_EQ(parse_mem_bytes("1G"), std::optional<std::uint64_t>(1ULL << 30));
  EXPECT_FALSE(parse_mem_bytes(nullptr).has_value());
  EXPECT_FALSE(parse_mem_bytes("").has_value());
  EXPECT_FALSE(parse_mem_bytes("-1").has_value());
  EXPECT_FALSE(parse_mem_bytes("4096x").has_value());
  EXPECT_FALSE(parse_mem_bytes("K").has_value());
  EXPECT_FALSE(parse_mem_bytes("1KB").has_value());
  EXPECT_FALSE(parse_mem_bytes(" 1").has_value());
  EXPECT_FALSE(parse_mem_bytes("99999999999999999999999").has_value());
  EXPECT_FALSE(parse_mem_bytes("999999999999G").has_value());  // overflow via suffix
}

TEST(Golden, StoreRoundTripsThroughJson) {
  GoldenStore store;
  store.campaign = "synthetic";
  store.seed = 99;
  store.digests = {{"alpha", 0x1111222233334444ULL}, {"beta", 0xaaaabbbbccccddddULL}};
  const GoldenStore parsed = GoldenStore::from_json(store.to_json());
  EXPECT_EQ(parsed.campaign, store.campaign);
  EXPECT_EQ(parsed.seed, store.seed);
  EXPECT_EQ(parsed.digests, store.digests);
  EXPECT_TRUE(diff_golden(store, parsed).empty());
}

TEST(Golden, MalformedJsonThrowsCheckpointError) {
  EXPECT_THROW(GoldenStore::from_json(""), CheckpointError);
  EXPECT_THROW(GoldenStore::from_json("{}"), CheckpointError);
  EXPECT_THROW(GoldenStore::from_json("{\"campaign\": \"x\"}"), CheckpointError);
  EXPECT_THROW(GoldenStore::from_json("{\"campaign\": \"x\", \"seed\": 1, \"jobs\": {\"a\": "
                                      "\"nothex\"}}"),
               CheckpointError);
}

TEST(Golden, DiffNamesEveryDivergenceAndAbsence) {
  GoldenStore golden;
  golden.campaign = "synthetic";
  golden.digests = {{"changed", 1}, {"dropped", 2}, {"same", 3}};
  GoldenStore fresh = golden;
  fresh.digests = {{"added", 9}, {"changed", 7}, {"same", 3}};

  const auto mismatches = diff_golden(golden, fresh);
  ASSERT_EQ(mismatches.size(), 3u);
  EXPECT_EQ(mismatches[0].job, "added");
  EXPECT_EQ(mismatches[0].expected, "(absent)");
  EXPECT_EQ(mismatches[1].job, "changed");
  EXPECT_EQ(mismatches[1].expected, digest_hex(1));
  EXPECT_EQ(mismatches[1].actual, digest_hex(7));
  EXPECT_EQ(mismatches[2].job, "dropped");
  EXPECT_EQ(mismatches[2].actual, "(absent)");
}

TEST(StandardCampaign, CoversTheCoreEnginesWithUniqueNames) {
  const Campaign campaign = standard_campaign(2019);
  EXPECT_EQ(campaign.name, "standard");
  ASSERT_GE(campaign.jobs.size(), 6u);
  for (std::size_t i = 0; i < campaign.jobs.size(); ++i) {
    for (std::size_t j = i + 1; j < campaign.jobs.size(); ++j) {
      EXPECT_NE(campaign.jobs[i].name, campaign.jobs[j].name);
    }
  }
  // One job per engine family, recognizable by prefix.
  for (const char* prefix : {"kt0-", "decision-", "info-", "kt1-", "tightness-", "faults-"}) {
    const bool found = std::any_of(
        campaign.jobs.begin(), campaign.jobs.end(),
        [&](const CampaignJob& job) { return job.name.rfind(prefix, 0) == 0; });
    EXPECT_TRUE(found) << prefix;
  }
}

TEST(StandardCampaign, RunsToCompletionInMemory) {
  CampaignConfig config;
  config.threads = 2;
  const Campaign campaign = standard_campaign(2019);
  const CampaignReport report = CampaignRunner(config).run(campaign);
  ASSERT_TRUE(report.all_done()) << "failed=" << report.num_failed
                                 << " timed_out=" << report.num_timed_out;
  for (const CampaignJobRecord& rec : report.records) EXPECT_NE(rec.digest, 0u);
}

TEST(Campaign, RejectsMalformedNames) {
  Campaign campaign = synthetic_campaign(47, 1);
  campaign.jobs[0].name = "has space";
  CampaignConfig config;
  EXPECT_THROW(CampaignRunner(config).run(campaign), std::invalid_argument);
  campaign.jobs[0].name = "../escape";
  EXPECT_THROW(CampaignRunner(config).run(campaign), std::invalid_argument);
  campaign.jobs[0].name = "";
  EXPECT_THROW(CampaignRunner(config).run(campaign), std::invalid_argument);
}

}  // namespace
}  // namespace bcclb

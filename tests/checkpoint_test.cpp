// Checksummed atomic snapshots (bcc/checkpoint.h): integrity must be
// all-or-nothing. A snapshot either reads back byte-identical or the read
// throws a typed CheckpointError — truncation, bit rot, and hand edits are
// never silently accepted, because the campaign layer resumes from whatever
// this layer hands it.
#include "bcc/checkpoint.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/errors.h"

namespace bcclb {
namespace {

std::string test_dir() {
  const ::testing::TestInfo* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir() + "bcclb_ckpt_" + info->test_suite_name() + "_" +
                    info->name();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string raw_read(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void raw_write(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Fnv1a, MatchesReferenceValues) {
  // FNV-1a offset basis for the empty string, and a classic test vector.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(fnv1a("bcclb"), fnv1a("bcclB"));
}

TEST(DigestHex, RoundTripsAndRejectsGarbage) {
  for (const std::uint64_t value :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0xdeadbeef}, UINT64_MAX}) {
    const std::string hex = digest_hex(value);
    EXPECT_EQ(hex.size(), 16u);
    std::uint64_t parsed = 0;
    ASSERT_TRUE(parse_digest_hex(hex, parsed)) << hex;
    EXPECT_EQ(parsed, value);
  }
  std::uint64_t parsed = 0;
  EXPECT_FALSE(parse_digest_hex("", parsed));
  EXPECT_FALSE(parse_digest_hex("0123456789abcde", parsed));    // 15 chars
  EXPECT_FALSE(parse_digest_hex("0123456789abcdef0", parsed));  // 17 chars
  EXPECT_FALSE(parse_digest_hex("0123456789abcdeg", parsed));   // non-hex
  EXPECT_FALSE(parse_digest_hex("0123456789ABCDEF", parsed));   // upper case
}

TEST(Snapshot, RoundTripsBodyAndLeavesNoTempFile) {
  const std::string dir = test_dir();
  const std::string path = dir + "/snap";
  const std::string body = "line one\nline two\n";
  write_snapshot_atomic(path, body);
  EXPECT_EQ(read_snapshot(path), body);
  EXPECT_FALSE(file_exists(path + ".tmp"));

  // The on-disk form is the body plus exactly one checksum trailer line.
  const std::string raw = raw_read(path);
  EXPECT_EQ(raw.substr(0, body.size()), body);
  EXPECT_EQ(raw.substr(body.size(), 9), "checksum ");
}

TEST(Snapshot, AppendsMissingFinalNewline) {
  const std::string dir = test_dir();
  const std::string path = dir + "/snap";
  write_snapshot_atomic(path, "no trailing newline");
  EXPECT_EQ(read_snapshot(path), "no trailing newline\n");
}

TEST(Snapshot, OverwriteIsAtomicReplacement) {
  const std::string dir = test_dir();
  const std::string path = dir + "/snap";
  write_snapshot_atomic(path, "version one\n");
  write_snapshot_atomic(path, "version two\n");
  EXPECT_EQ(read_snapshot(path), "version two\n");
}

TEST(Snapshot, MissingFileThrowsCheckpointError) {
  const std::string dir = test_dir();
  EXPECT_THROW(read_snapshot(dir + "/nope"), CheckpointError);
}

TEST(Snapshot, TruncationIsDetected) {
  const std::string dir = test_dir();
  const std::string path = dir + "/snap";
  write_snapshot_atomic(path, "a body that will be cut short\nwith two lines\n");
  const std::string raw = raw_read(path);
  // Chop at every interesting boundary: mid-body, mid-trailer, empty.
  for (const std::size_t keep : {raw.size() - 1, raw.size() - 10, raw.size() / 2,
                                 std::size_t{3}, std::size_t{0}}) {
    raw_write(path, raw.substr(0, keep));
    EXPECT_THROW(read_snapshot(path), CheckpointError) << "kept " << keep << " bytes";
  }
}

TEST(Snapshot, GarbageContentIsDetected) {
  const std::string dir = test_dir();
  const std::string path = dir + "/snap";
  raw_write(path, "total nonsense, no trailer\n");
  EXPECT_THROW(read_snapshot(path), CheckpointError);
  raw_write(path, "checksum zzzzzzzzzzzzzzzz\n");  // malformed digest
  EXPECT_THROW(read_snapshot(path), CheckpointError);
}

TEST(Snapshot, BitFlipFailsChecksumWithClearMessage) {
  const std::string dir = test_dir();
  const std::string path = dir + "/snap";
  write_snapshot_atomic(path, "precious campaign state\n");
  std::string raw = raw_read(path);
  raw[4] ^= 0x20;  // flip one bit inside the body
  raw_write(path, raw);
  try {
    read_snapshot(path);
    FAIL() << "corrupt snapshot was accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"), std::string::npos) << e.what();
    EXPECT_STREQ(e.kind(), "CheckpointError");
  }
}

TEST(PlainFile, RoundTripsByteExact) {
  const std::string dir = test_dir();
  const std::string path = dir + "/artifact.txt";
  const std::string bytes = "exact bytes, no trailer\x01\x02\n";
  write_file_atomic(path, bytes);
  EXPECT_EQ(read_file(path), bytes);
  EXPECT_EQ(raw_read(path), bytes);
  EXPECT_FALSE(file_exists(path + ".tmp"));
  EXPECT_THROW(read_file(dir + "/absent"), CheckpointError);
}

}  // namespace
}  // namespace bcclb

// Tests for the 2-party framework, the concrete protocols, and the
// log-rank lower bounds (Theorem 2.3, Lemma 4.1, Corollaries 2.4/4.2).
#include <gtest/gtest.h>

#include "comm/components_protocol.h"
#include "comm/lower_bounds.h"
#include "comm/partition_protocols.h"
#include "comm/protocol.h"
#include "common/mathutil.h"
#include "common/random.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "partition/bell.h"
#include "partition/enumeration.h"
#include "partition/pair_partition.h"
#include "partition/sampling.h"

namespace bcclb {
namespace {

TEST(Protocol, BitHelpersRoundTrip) {
  std::vector<bool> bits;
  append_uint(bits, 0b1011, 4);
  append_uint(bits, 7, 3);
  std::size_t at = 0;
  EXPECT_EQ(read_uint(bits, at, 4), 0b1011u);
  EXPECT_EQ(read_uint(bits, at, 3), 7u);
  EXPECT_EQ(at, 7u);
  EXPECT_THROW(read_uint(bits, at, 1), std::invalid_argument);
  EXPECT_THROW(append_uint(bits, 4, 2), std::invalid_argument);
}

TEST(Protocol, TimeoutThrows) {
  class Chatter final : public PartyAlgorithm {
   public:
    std::vector<bool> send(unsigned) override { return {true}; }
    void receive(unsigned, const std::vector<bool>&) override {}
    bool finished() const override { return false; }
  };
  Chatter a, b;
  EXPECT_THROW(run_protocol(a, b, 5), std::invalid_argument);
}

TEST(ComponentsProtocol, EncodingRoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const SetPartition p = uniform_partition(9, rng);
    EXPECT_EQ(decode_partition(9, encode_partition(p)), p);
  }
}

TEST(ComponentsProtocol, DecidesConnectivityOnRandomEdgeSplits) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 12;
    const Graph g = random_gnp(n, 0.12, rng);
    // Random edge partition between Alice and Bob.
    Graph ga(n), gb(n);
    for (const Edge& e : g.edges()) {
      (rng.next_bool() ? ga : gb).add_edge(e.u, e.v);
    }
    ComponentsAlice alice(ga);
    ComponentsBob bob(gb);
    const ProtocolResult res = run_protocol(alice, bob, 3);
    EXPECT_EQ(bob.connected(), is_connected(g)) << "trial " << trial;
    // Cost: exactly n * ceil(log2 n) bits Alice -> Bob.
    EXPECT_EQ(res.bits_alice_to_bob, n * ceil_log2(n));
    EXPECT_EQ(res.bits_bob_to_alice, 0u);
    // Bob's join equals the component partition of the union graph.
    const auto labels = component_labels(g);
    std::vector<std::uint32_t> l(labels.begin(), labels.end());
    EXPECT_EQ(bob.joined_components(), SetPartition::from_labels(l));
  }
}

TEST(PartitionDecision, ExhaustiveOnSmallGround) {
  const auto parts = all_partitions(4);
  for (const auto& pa : parts) {
    for (const auto& pb : parts) {
      PartitionDecisionAlice alice(pa);
      PartitionDecisionBob bob(pb);
      run_protocol(alice, bob, 3);
      const bool expect = pa.join(pb).is_coarsest();
      EXPECT_EQ(bob.join_is_one(), expect);
      EXPECT_EQ(alice.join_is_one(), expect);  // Bob's 1-bit answer reached Alice
    }
  }
}

TEST(PartitionDecision, CostIsNLogNPlusOne) {
  Rng rng(5);
  const SetPartition pa = uniform_partition(16, rng);
  const SetPartition pb = uniform_partition(16, rng);
  PartitionDecisionAlice alice(pa);
  PartitionDecisionBob bob(pb);
  const ProtocolResult res = run_protocol(alice, bob, 3);
  EXPECT_EQ(res.total_bits(), 16u * 4u + 1u);
}

TEST(PartitionComp, ExactProtocolComputesJoin) {
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const SetPartition pa = uniform_partition(8, rng);
    const SetPartition pb = uniform_partition(8, rng);
    PartitionCompAlice alice(pa);
    PartitionCompBob bob(pb);
    run_protocol(alice, bob, 3);
    EXPECT_EQ(bob.join(), pa.join(pb));
  }
}

TEST(PartitionComp, TruncatedErrsOnlyOnTailInputs) {
  const std::size_t n = 5;
  const double keep = 0.6;
  const auto keep_count =
      static_cast<std::uint64_t>(keep * static_cast<double>(bell_number_u64(n)));
  const SetPartition pb = SetPartition::finest(n);
  std::size_t errors = 0;
  for (const auto& pa : all_partitions(n)) {
    PartitionCompAlice alice(pa, keep);
    PartitionCompBob bob(pb);
    run_protocol(alice, bob, 3);
    const bool correct = bob.join() == pa;
    const bool kept = partition_index(pa) < keep_count;
    if (kept) {
      EXPECT_TRUE(correct) << pa.to_string();
    }
    if (!correct) ++errors;
  }
  const double eps = static_cast<double>(errors) / static_cast<double>(bell_number_u64(n));
  EXPECT_NEAR(eps, 1.0 - keep, 0.08);
}

TEST(TwoPartitionIndex, ExhaustiveOnSixElements) {
  const auto matchings = all_perfect_matchings(6);
  const unsigned width = ceil_log2(num_perfect_matchings(6));
  for (const auto& pa : matchings) {
    for (const auto& pb : matchings) {
      TwoPartitionIndexAlice alice(pa);
      TwoPartitionIndexBob bob(pb);
      const ProtocolResult res = run_protocol(alice, bob, 3);
      EXPECT_EQ(bob.join_is_one(), pa.join(pb).is_coarsest());
      EXPECT_EQ(bob.join(), pa.join(pb));
      EXPECT_EQ(res.total_bits(), width);
    }
  }
}

TEST(TwoPartitionIndex, RejectsNonMatchings) {
  EXPECT_THROW(TwoPartitionIndexAlice(SetPartition::coarsest(4)), std::invalid_argument);
  EXPECT_THROW(TwoPartitionIndexBob(SetPartition::finest(4)), std::invalid_argument);
}

// ---- Rank lower bounds -------------------------------------------------------

TEST(RankBounds, Theorem23PartitionMatrixFullRank) {
  // rank(M_n) = B_n (Dowling–Wilson).
  for (std::size_t n = 1; n <= 6; ++n) {
    const RankReport r = partition_matrix_rank(n);
    EXPECT_EQ(r.dimension, bell_number_u64(n)) << "n=" << n;
    EXPECT_TRUE(r.full_rank) << "n=" << n;
  }
}

TEST(RankBounds, Lemma41TwoPartitionMatrixFullRank) {
  // rank(E_n) = (n-1)!!.
  for (std::size_t n : {2u, 4u, 6u, 8u}) {
    const RankReport r = two_partition_matrix_rank(n);
    EXPECT_EQ(r.dimension, num_perfect_matchings(n)) << "n=" << n;
    EXPECT_TRUE(r.full_rank) << "n=" << n;
  }
}

TEST(RankBounds, LogRankMatchesLogBell) {
  const RankReport r = partition_matrix_rank(6);
  EXPECT_NEAR(r.log_rank_bound(), log2_bell(6), 1e-9);
}

TEST(RankBounds, SandwichLowerLeqUpper) {
  // log-rank bound <= trivial protocol cost, and both are Θ(n log n).
  for (std::size_t n = 4; n <= 128; n *= 2) {
    const double lower = partition_cc_lower_bound(n);
    const double upper = static_cast<double>(components_protocol_cost(n));
    EXPECT_LT(lower, upper) << "n=" << n;
    EXPECT_GT(lower, 0.1 * static_cast<double>(n)) << "n=" << n;
  }
  // Ratio upper/lower stays bounded: a constant-factor sandwich.
  const double r128 = static_cast<double>(components_protocol_cost(128)) /
                      partition_cc_lower_bound(128);
  EXPECT_LT(r128, 6.0);
}

TEST(RankBounds, Kt1RoundLowerBoundShape) {
  // Ω(log n): at b = 1 the bound is cc / (4n log2 3) and grows with n.
  double prev = 0;
  for (std::size_t n = 8; n <= 512; n *= 2) {
    const double rounds = kt1_round_lower_bound(n, partition_cc_lower_bound(n), 1);
    EXPECT_GT(rounds, prev) << "n=" << n;
    prev = rounds;
  }
  // b-fold speedup: BCC(b) bound is ~1/b of BCC(1)'s for moderate b.
  const double r1 = kt1_round_lower_bound(256, partition_cc_lower_bound(256), 1);
  const double r8 = kt1_round_lower_bound(256, partition_cc_lower_bound(256), 8);
  EXPECT_GT(r1 / r8, 4.0);
}

}  // namespace
}  // namespace bcclb

// Tests for the common substrate: RNG, public coins, BigUint, math helpers,
// and the parallel_for_blocks sharding contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <bit>
#include <cstdlib>
#include <optional>

#include "common/bigint.h"
#include "common/bitset_reduce.h"
#include "common/check.h"
#include "common/env.h"
#include "common/errors.h"
#include "common/mathutil.h"
#include "common/parallel.h"
#include "common/random.h"

namespace bcclb {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.next_below(10)];
  for (int c : counts) {
    EXPECT_GT(c, trials / 10 - 600);
    EXPECT_LT(c, trials / 10 + 600);
  }
}

TEST(Rng, NextInBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::multiset<int> a(v.begin(), v.end()), b(w.begin(), w.end());
  EXPECT_EQ(a, b);
}

TEST(PublicCoins, SameSeedSameBits) {
  PublicCoins a(123, 256), b(123, 256);
  for (std::size_t i = 0; i < 256; ++i) EXPECT_EQ(a.bit(i), b.bit(i));
}

TEST(PublicCoins, OutOfRangeThrows) {
  PublicCoins coins(1, 10);
  EXPECT_THROW(coins.bit(10), std::invalid_argument);
}

TEST(PublicCoins, WordMatchesBits) {
  PublicCoins coins(77, 128);
  const std::uint64_t w = coins.word(3, 16);
  for (unsigned k = 0; k < 16; ++k) {
    EXPECT_EQ((w >> (15 - k)) & 1, static_cast<std::uint64_t>(coins.bit(3 + k)));
  }
}

TEST(BigUint, SmallArithmetic) {
  BigUint a(7), b(5);
  EXPECT_EQ((a + b).to_u64(), 12u);
  EXPECT_EQ((a - b).to_u64(), 2u);
  EXPECT_EQ((a * b).to_u64(), 35u);
  EXPECT_EQ((a * 1000u).to_u64(), 7000u);
}

TEST(BigUint, SubtractUnderflowThrows) {
  EXPECT_THROW(BigUint(3) - BigUint(5), std::invalid_argument);
}

TEST(BigUint, LargeMultiplication) {
  // 2^64 * 2^64 = 2^128: build via repeated doubling.
  BigUint x(1);
  for (int i = 0; i < 64; ++i) x *= 2;
  const BigUint sq = x * x;
  EXPECT_EQ(sq.bit_length(), 129u);
  EXPECT_NEAR(sq.log2(), 128.0, 1e-9);
}

TEST(BigUint, DecimalRoundTrip) {
  const std::string s = "123456789012345678901234567890";
  EXPECT_EQ(BigUint::from_decimal(s).to_decimal(), s);
}

TEST(BigUint, DecimalOfZeroAndSmall) {
  EXPECT_EQ(BigUint(0).to_decimal(), "0");
  EXPECT_EQ(BigUint(42).to_decimal(), "42");
}

TEST(BigUint, CompareOrdering) {
  EXPECT_LT(BigUint(3), BigUint(5));
  EXPECT_GT(BigUint::from_decimal("100000000000000000000"), BigUint(UINT64_MAX));
  EXPECT_EQ(BigUint(7), BigUint(7));
}

TEST(BigUint, Log2KnownValues) {
  EXPECT_NEAR(BigUint(1024).log2(), 10.0, 1e-12);
  EXPECT_NEAR(BigUint(1000).log2(), std::log2(1000.0), 1e-12);
}

TEST(BigUint, FitsU64Boundary) {
  EXPECT_TRUE(BigUint(UINT64_MAX).fits_u64());
  BigUint big = BigUint(UINT64_MAX) + BigUint(1);
  EXPECT_FALSE(big.fits_u64());
  EXPECT_THROW(big.to_u64(), std::invalid_argument);
}

TEST(MathUtil, HarmonicValues) {
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_NEAR(harmonic(4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
  // Asymptotic branch agrees with the direct sum at the crossover.
  double direct = 0;
  for (int i = 1; i <= 20000; ++i) direct += 1.0 / i;
  EXPECT_NEAR(harmonic(20000), direct, 1e-9);
}

TEST(MathUtil, Log2Factorial) {
  EXPECT_NEAR(log2_factorial(5), std::log2(120.0), 1e-9);
  EXPECT_NEAR(log2_factorial(0), 0.0, 1e-12);
}

TEST(MathUtil, PerfectMatchingCounts) {
  EXPECT_EQ(perfect_matching_count(2), 1u);
  EXPECT_EQ(perfect_matching_count(4), 3u);
  EXPECT_EQ(perfect_matching_count(6), 15u);
  EXPECT_EQ(perfect_matching_count(8), 105u);
  EXPECT_EQ(perfect_matching_count(10), 945u);
  EXPECT_EQ(perfect_matching_count(12), 10395u);
}

TEST(MathUtil, Log2DoubleFactorialMatchesExact) {
  for (std::uint64_t n = 2; n <= 20; n += 2) {
    EXPECT_NEAR(log2_double_factorial_odd(n),
                std::log2(static_cast<double>(perfect_matching_count(n))), 1e-9)
        << "n=" << n;
  }
}

TEST(MathUtil, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1ULL << 40), 40u);
  EXPECT_EQ(ceil_log2((1ULL << 40) + 1), 41u);
}

TEST(MathUtil, CheckedPow) {
  EXPECT_EQ(checked_pow(3, 4), 81u);
  EXPECT_EQ(checked_pow(10, 0), 1u);
  EXPECT_THROW(checked_pow(2, 64), std::invalid_argument);
}

TEST(Check, RequireMessageNamesExpressionFileAndReason) {
  try {
    BCCLB_REQUIRE(1 == 2, "one is not two");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("requirement failed: 1 == 2"), std::string::npos) << what;
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("one is not two"), std::string::npos) << what;
  }
}

TEST(Check, CheckThrowsLogicErrorWithoutTrailingDashWhenMessageEmpty) {
  try {
    BCCLB_CHECK(false, "");
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("internal check failed: false"), std::string::npos) << what;
    EXPECT_EQ(what.find("—"), std::string::npos) << what;
  }
}

TEST(Check, ExpressionIsEvaluatedExactlyOnce) {
  int evaluations = 0;
  const auto touch = [&] {
    ++evaluations;
    return true;
  };
  BCCLB_REQUIRE(touch(), "must pass");
  EXPECT_EQ(evaluations, 1);
  BCCLB_CHECK(touch(), "must pass");
  EXPECT_EQ(evaluations, 2);
}

TEST(Errors, WhatCarriesInstanceVertexAndRound) {
  const BandwidthViolationError e("too wide", {0xabcdef1234567890ULL, 3, 7});
  const std::string what = e.what();
  EXPECT_NE(what.find("too wide"), std::string::npos) << what;
  EXPECT_NE(what.find("instance=abcdef1234567890"), std::string::npos) << what;
  EXPECT_NE(what.find("vertex 3"), std::string::npos) << what;
  EXPECT_NE(what.find("round 7"), std::string::npos) << what;
  EXPECT_EQ(e.context().vertex, 3);
  EXPECT_EQ(e.context().round, 7);
}

TEST(Errors, DefaultContextAddsNoSuffix) {
  const RoundLimitError e("ran out of rounds");
  EXPECT_STREQ(e.what(), "ran out of rounds");
  EXPECT_EQ(e.context().instance_digest, 0u);
}

TEST(Errors, KindAndTransienceIdentifyTheLeafType) {
  EXPECT_STREQ(BandwidthViolationError("x").kind(), "BandwidthViolationError");
  EXPECT_STREQ(RoundLimitError("x").kind(), "RoundLimitError");
  EXPECT_STREQ(FaultInjectionError("x").kind(), "FaultInjectionError");
  EXPECT_STREQ(JobTimeoutError("x").kind(), "JobTimeoutError");
  EXPECT_STREQ(RangeViolationError("x").kind(), "RangeViolationError");

  EXPECT_TRUE(FaultInjectionError("x").transient());
  EXPECT_FALSE(BandwidthViolationError("x").transient());
  EXPECT_FALSE(JobTimeoutError("x").transient());
}

TEST(Errors, CatchableUnderTheLegacyInvalidArgumentContract) {
  // The library's historical contract throws std::invalid_argument for model
  // violations; the typed hierarchy must remain catchable through it.
  try {
    throw BandwidthViolationError("over budget", {0, 1, 2});
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("over budget"), std::string::npos);
  }
  // And through the shared base, with the structured context intact.
  try {
    throw JobTimeoutError("late", {0, -1, 9});
  } catch (const BcclbError& e) {
    EXPECT_STREQ(e.kind(), "JobTimeoutError");
    EXPECT_EQ(e.context().round, 9);
  }
}

// The blocks handed out for (count, threads): each body call records its
// [begin, end) range.
std::vector<std::pair<std::size_t, std::size_t>> record_blocks(std::size_t count,
                                                               unsigned threads) {
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  parallel_for_blocks(count, threads, [&](std::size_t begin, std::size_t end) {
    std::lock_guard<std::mutex> lock(m);
    blocks.emplace_back(begin, end);
  });
  std::sort(blocks.begin(), blocks.end());
  return blocks;
}

TEST(ParallelForBlocks, ZeroItemsNeverInvokesTheBody) {
  for (const unsigned threads : {0u, 1u, 4u}) {
    EXPECT_TRUE(record_blocks(0, threads).empty()) << "threads " << threads;
  }
}

TEST(ParallelForBlocks, OneItemRunsInlineAsASingleBlock) {
  const auto blocks = record_blocks(1, 8);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], std::make_pair(std::size_t{0}, std::size_t{1}));
}

TEST(ParallelForBlocks, MoreWorkersThanItemsStillCoversEveryIndexOnce) {
  // threads (16) > count (5): blocks must still tile [0, 5) exactly.
  const auto blocks = record_blocks(5, 16);
  ASSERT_FALSE(blocks.empty());
  EXPECT_LE(blocks.size(), 5u);
  std::size_t expected_begin = 0;
  for (const auto& [begin, end] : blocks) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_LT(begin, end);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, 5u);
}

TEST(ParallelForBlocks, SingleThreadRunsOnTheCallingThread) {
  const auto caller = std::this_thread::get_id();
  std::thread::id body_thread;
  parallel_for_blocks(100, 1, [&](std::size_t, std::size_t) {
    body_thread = std::this_thread::get_id();
  });
  EXPECT_EQ(body_thread, caller);
}

TEST(ParallelForBlocks, ShardingIsAPureFunctionOfCountAndThreads) {
  // Same (count, threads) must shard identically on every call — the replay
  // guarantee — and the uneven remainder goes to the leading blocks.
  const auto first = record_blocks(17, 4);
  const auto second = record_blocks(17, 4);
  EXPECT_EQ(first, second);
  ASSERT_EQ(first.size(), 4u);
  EXPECT_EQ(first[0], std::make_pair(std::size_t{0}, std::size_t{5}));  // 17 % 4 = 1 extra
  EXPECT_EQ(first[3].second, 17u);
}

TEST(ParallelForBlocks, ParallelSumBitIdenticalToSerial) {
  const std::size_t count = 1000;
  std::vector<std::uint64_t> serial(count), parallel(count);
  const auto fill = [](std::vector<std::uint64_t>& out) {
    return [&out](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) out[i] = i * 0x9e3779b97f4a7c15ULL;
    };
  };
  parallel_for_blocks(count, 1, fill(serial));
  parallel_for_blocks(count, 7, fill(parallel));
  EXPECT_EQ(serial, parallel);
}

// ---- strict env parsing (common/env.h) --------------------------------------

TEST(EnvParse, AcceptsPlainDecimal) {
  EXPECT_EQ(parse_env_u64("0"), 0u);
  EXPECT_EQ(parse_env_u64("7"), 7u);
  EXPECT_EQ(parse_env_u64("1000000"), 1000000u);
  EXPECT_EQ(parse_env_u64("18446744073709551615"), UINT64_MAX);
}

TEST(EnvParse, RejectsEverythingElse) {
  for (const char* bad : {"", " 7", "7 ", "+7", "-7", "7x", "x7", "0x10", "3.5", "1e6",
                          "18446744073709551616", "99999999999999999999"}) {
    EXPECT_EQ(parse_env_u64(bad), std::nullopt) << "input '" << bad << "'";
  }
}

// Saves and restores one variable so the suite never leaks state.
class EnvVarGuard {
 public:
  explicit EnvVarGuard(const char* name) : name_(name) {
    const char* current = std::getenv(name);
    if (current != nullptr) saved_ = current;
  }
  ~EnvVarGuard() {
    if (saved_.has_value()) {
      setenv(name_, saved_->c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }
  void set(const char* value) { setenv(name_, value, 1); }
  void unset() { unsetenv(name_); }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(EnvParse, RequiredValidThrowsOnMalformedOnly) {
  EnvVarGuard guard("BCCLB_TEST_ENV_VAR");
  guard.unset();
  EXPECT_EQ(env_u64_required_valid("BCCLB_TEST_ENV_VAR"), std::nullopt);
  guard.set("123");
  EXPECT_EQ(env_u64_required_valid("BCCLB_TEST_ENV_VAR"), 123u);
  guard.set("12x");
  EXPECT_THROW(env_u64_required_valid("BCCLB_TEST_ENV_VAR"), BcclbError);
  guard.set(" 12");
  EXPECT_THROW(env_u64_required_valid("BCCLB_TEST_ENV_VAR"), BcclbError);
}

TEST(EnvParse, LenientLookupNeverThrows) {
  EnvVarGuard guard("BCCLB_TEST_ENV_VAR");
  guard.set("nonsense");
  EXPECT_EQ(env_u64("BCCLB_TEST_ENV_VAR"), std::nullopt);
  guard.set("31");
  EXPECT_EQ(env_u64("BCCLB_TEST_ENV_VAR"), 31u);
}

// ---- cache-blocked bitset reductions (common/bitset_reduce.h) ---------------

TEST(BitsetReduce, PopcountMatchesSerialAtEveryWidth) {
  Rng rng(99);
  std::vector<std::uint64_t> words(3 * kReduceBlockWords + 17);
  for (auto& w : words) w = rng.next_u64();
  std::uint64_t expected = 0;
  for (const std::uint64_t w : words) expected += static_cast<std::uint64_t>(std::popcount(w));
  for (const unsigned threads : {1u, 2u, 8u}) {
    EXPECT_EQ(popcount_words(words, threads), expected) << threads << " threads";
  }
}

TEST(BitsetReduce, AllBitsSetHandlesTails) {
  for (const std::size_t num_bits : {1u, 63u, 64u, 65u, 128u, 1000u}) {
    std::vector<std::uint64_t> words((num_bits + 63) / 64, ~0ULL);
    for (const unsigned threads : {1u, 4u}) {
      EXPECT_TRUE(all_bits_set(words, num_bits, threads)) << num_bits;
    }
    // Clearing the last relevant bit must flip the answer, even when the
    // word's irrelevant tail bits stay set.
    words[(num_bits - 1) / 64] &= ~(1ULL << ((num_bits - 1) % 64));
    for (const unsigned threads : {1u, 4u}) {
      EXPECT_FALSE(all_bits_set(words, num_bits, threads)) << num_bits;
    }
  }
}

TEST(BitsetReduce, MinMaxAndWidthSumsAreThreadInvariant) {
  Rng rng(7);
  std::vector<std::uint64_t> values(2 * kReduceBlockWords + 5);
  std::vector<std::uint8_t> widths(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = rng.next_u64();
    widths[i] = static_cast<std::uint8_t>(rng.next_u64() % 65);
  }
  const MinMaxU64 serial_mm = min_max_values(values, 1);
  const std::uint64_t serial_sum = sum_widths(widths, 1);
  EXPECT_EQ(serial_mm.min, *std::min_element(values.begin(), values.end()));
  EXPECT_EQ(serial_mm.max, *std::max_element(values.begin(), values.end()));
  for (const unsigned threads : {2u, 8u}) {
    const MinMaxU64 mm = min_max_values(values, threads);
    EXPECT_EQ(mm.min, serial_mm.min);
    EXPECT_EQ(mm.max, serial_mm.max);
    EXPECT_EQ(sum_widths(widths, threads), serial_sum);
  }
}

}  // namespace
}  // namespace bcclb

// Tests for the CONGEST substrate and triangle detection ([Fis+18] context).
#include <gtest/gtest.h>

#include "common/random.h"
#include "congest/bfs.h"
#include "congest/model.h"
#include "congest/triangle.h"
#include "graph/generators.h"

namespace bcclb {
namespace {

CongestRunResult detect(const Graph& g, unsigned b) {
  CongestSimulator sim(g, b);
  std::size_t max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) max_deg = std::max(max_deg, g.degree(v));
  return sim.run(triangle_detection_factory(),
                 TriangleDetection::rounds_needed(g.num_vertices(), max_deg, b) + 2);
}

TEST(Congest, MessagesOnlyTravelAlongEdges) {
  // A counting algorithm: each vertex tallies the non-silent messages it
  // receives; on a path, interior vertices hear 2, endpoints 1.
  class Counter final : public CongestAlgorithm {
   public:
    void init(const CongestView& view) override { deg_ = view.neighbor_ids.size(); }
    std::vector<Message> send(unsigned) override {
      return std::vector<Message>(deg_, Message::one_bit(true));
    }
    void receive(unsigned, std::span<const Message> inbox) override {
      heard_ = 0;
      for (const Message& m : inbox) {
        if (!m.is_silent()) ++heard_;
      }
      done_ = true;
    }
    bool finished() const override { return done_; }
    bool decide() const override { return true; }
    std::size_t heard() const { return heard_; }

   private:
    std::size_t deg_ = 0, heard_ = 0;
    bool done_ = false;
  };
  CongestSimulator sim(path_graph(5), 1);
  const auto res = sim.run([] { return std::make_unique<Counter>(); }, 2);
  EXPECT_TRUE(res.all_finished);
  // Bits: each vertex sends deg bits in round 1 = 2*|E| = 8 bits.
  EXPECT_EQ(res.total_bits_sent, 8u);
}

TEST(Congest, BandwidthEnforced) {
  class Wide final : public CongestAlgorithm {
   public:
    void init(const CongestView& view) override { deg_ = view.neighbor_ids.size(); }
    std::vector<Message> send(unsigned) override {
      return std::vector<Message>(deg_, Message::bits(7, 3));
    }
    void receive(unsigned, std::span<const Message>) override {}
    bool finished() const override { return false; }
    bool decide() const override { return true; }

   private:
    std::size_t deg_ = 0;
  };
  CongestSimulator sim(path_graph(3), 2);
  EXPECT_THROW(sim.run([] { return std::make_unique<Wide>(); }, 1), std::invalid_argument);
}

TEST(Congest, OutboxSizeValidated) {
  class Short final : public CongestAlgorithm {
   public:
    void init(const CongestView&) override {}
    std::vector<Message> send(unsigned) override { return {}; }
    void receive(unsigned, std::span<const Message>) override {}
    bool finished() const override { return false; }
    bool decide() const override { return true; }
  };
  CongestSimulator sim(path_graph(3), 1);
  EXPECT_THROW(sim.run([] { return std::make_unique<Short>(); }, 1), std::invalid_argument);
}

TEST(Triangle, BruteForceReference) {
  Graph tri(3);
  tri.add_edge(0, 1);
  tri.add_edge(1, 2);
  tri.add_edge(2, 0);
  EXPECT_TRUE(has_triangle(tri));
  EXPECT_FALSE(has_triangle(path_graph(5)));
  Rng rng(1);
  EXPECT_FALSE(has_triangle(random_one_cycle(8, rng).to_graph()));
}

class TriangleSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(TriangleSweep, MatchesBruteForceAcrossDensities) {
  const unsigned b = GetParam();
  Rng rng(b * 100 + 7);
  for (int trial = 0; trial < 12; ++trial) {
    const double p = 0.05 + 0.03 * trial;
    const Graph g = random_gnp(14, p, rng);
    const auto res = detect(g, b);
    EXPECT_TRUE(res.all_finished);
    // decide() convention: system true iff triangle-free.
    EXPECT_EQ(res.decision, !has_triangle(g)) << "b=" << b << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, TriangleSweep, ::testing::Values(1u, 2u, 8u));

TEST(Triangle, CyclesAreTriangleFreeUnlessLength3) {
  Rng rng(5);
  const auto c3 = CycleStructure::from_cycles(3, {{0, 1, 2}});
  EXPECT_FALSE(detect(c3.to_graph(), 2).decision);  // triangle present
  const auto c9 = random_one_cycle(9, rng);
  EXPECT_TRUE(detect(c9.to_graph(), 2).decision);
}

TEST(Triangle, RoundsScaleWithDegreeAndBandwidth) {
  // Constant-degree inputs at b = 1 need Θ(log n) rounds — the [Fis+18]
  // regime; higher bandwidth divides rounds.
  Rng rng(9);
  const Graph cyc = random_one_cycle(32, rng).to_graph();  // Δ = 2
  const auto r1 = detect(cyc, 1);
  const auto r5 = detect(cyc, 5);
  EXPECT_LE(r1.rounds_executed, TriangleDetection::rounds_needed(32, 2, 1) + 2);
  EXPECT_GT(r1.rounds_executed, r5.rounds_executed);
  EXPECT_GE(r1.rounds_executed, 15u);  // 3 entries * 5 bits at b = 1
}

TEST(Triangle, DisconnectedAndIsolatedVertices) {
  Graph g(7);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);  // triangle in one component, vertices 3..6 isolated
  const auto res = detect(g, 2);
  EXPECT_TRUE(res.all_finished);
  EXPECT_FALSE(res.decision);
}

// ---- BFS ([HP15] distances context) -----------------------------------------

TEST(CongestBfs, DistancesMatchReference) {
  Rng rng(31);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = random_gnp(20, 0.12, rng);
    const BfsRun out = run_congest_bfs(g, 0);
    const auto want = reference_distances(g, 0);
    for (VertexId v = 0; v < 20; ++v) {
      EXPECT_EQ(out.distances[v], want[v]) << "trial " << trial << " v " << v;
    }
  }
}

TEST(CongestBfs, RoundsEqualEccentricityPlusOne) {
  // On a path from the left end, ecc = n-1 and the run takes ecc + 1 rounds.
  const std::size_t n = 12;
  const BfsRun out = run_congest_bfs(path_graph(n), 0);
  EXPECT_EQ(out.eccentricity, n - 1);
  EXPECT_EQ(out.run.rounds_executed, n);
  EXPECT_TRUE(out.run.decision);  // connected: everyone reached
}

TEST(CongestBfs, CycleEccentricityIsHalf) {
  Rng rng(32);
  const BfsRun out = run_congest_bfs(random_one_cycle(16, rng).to_graph(), 0);
  EXPECT_EQ(out.eccentricity, 8u);
}

TEST(CongestBfs, DisconnectedLeavesUnreached) {
  Rng rng(33);
  const Graph g = random_two_cycle(12, rng).to_graph();
  const BfsRun out = run_congest_bfs(g, 0);
  EXPECT_FALSE(out.run.decision);
  std::size_t unreached = 0;
  for (const auto& d : out.distances) {
    if (!d.has_value()) ++unreached;
  }
  EXPECT_GE(unreached, 3u);  // the other cycle has length >= 3
}

TEST(CongestBfs, SourceValidation) {
  EXPECT_THROW(run_congest_bfs(path_graph(4), 9), std::invalid_argument);
}

}  // namespace
}  // namespace bcclb

// Tests for port-preserving crossings (Definition 3.3 / Figure 1 /
// Lemma 3.4), the indistinguishability graph (Definition 3.6, Lemmas
// 3.7-3.9) and the matching machinery (Theorem 2.1).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "bcc/algorithms/two_cycle_adversaries.h"
#include "bcc/simulator.h"
#include "common/mathutil.h"
#include "common/random.h"
#include "crossing/active_edges.h"
#include "crossing/crossing.h"
#include "crossing/indistinguishability_graph.h"
#include "crossing/matching.h"
#include "crossing/ported_instance.h"
#include "graph/components.h"
#include "graph/generators.h"

namespace bcclb {
namespace {

// Two independent clockwise edges of a structure, or fails the test.
std::pair<DirectedEdge, DirectedEdge> pick_independent(const CycleStructure& cs) {
  const auto edges = cs.directed_edges();
  for (std::size_t a = 0; a < edges.size(); ++a) {
    for (std::size_t b = a + 1; b < edges.size(); ++b) {
      if (cs.edges_independent(edges[a], edges[b])) return {edges[a], edges[b]};
    }
  }
  throw std::logic_error("no independent pair");
}

TEST(Crossing, PreservesEveryLocalPortView) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const auto cs = random_one_cycle(9, rng);
    const BccInstance inst = random_kt0_instance(cs, rng);
    const auto [e1, e2] = pick_independent(cs);
    const BccInstance crossed = port_preserving_crossing(inst, e1, e2);
    // The defining property: every vertex sees identical input ports.
    for (VertexId v = 0; v < 9; ++v) {
      EXPECT_EQ(inst.input_ports(v), crossed.input_ports(v)) << "vertex " << v;
    }
  }
}

TEST(Crossing, ChangesInputGraphAsSpecified) {
  Rng rng(2);
  const auto cs = random_one_cycle(8, rng);
  const BccInstance inst = canonical_kt0_instance(cs);
  const auto [e1, e2] = pick_independent(cs);
  const BccInstance crossed = port_preserving_crossing(inst, e1, e2);
  EXPECT_FALSE(crossed.input().has_edge(e1.tail, e1.head));
  EXPECT_FALSE(crossed.input().has_edge(e2.tail, e2.head));
  EXPECT_TRUE(crossed.input().has_edge(e1.tail, e2.head));
  EXPECT_TRUE(crossed.input().has_edge(e2.tail, e1.head));
  EXPECT_EQ(num_components(crossed.input()), 2u);
}

TEST(Crossing, AgreesWithStructureLevelCrossing) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto cs = random_one_cycle(10, rng);
    const BccInstance inst = canonical_kt0_instance(cs);
    const auto [e1, e2] = pick_independent(cs);
    const BccInstance crossed = port_preserving_crossing(inst, e1, e2);
    EXPECT_EQ(CycleStructure::from_graph(crossed.input()), cs.crossed(e1, e2));
  }
}

TEST(Crossing, IsAnInvolutionOnTheInstance) {
  // Crossing the new pair (v1,u2), (v2,u1) back restores the original.
  Rng rng(4);
  const auto cs = random_one_cycle(8, rng);
  const BccInstance inst = random_kt0_instance(cs, rng);
  const auto [e1, e2] = pick_independent(cs);
  const BccInstance crossed = port_preserving_crossing(inst, e1, e2);
  const BccInstance back =
      port_preserving_crossing(crossed, {e1.tail, e2.head}, {e2.tail, e1.head});
  EXPECT_TRUE(back.input() == inst.input());
  EXPECT_EQ(back.wiring(), inst.wiring());
}

TEST(Crossing, RejectsDependentOrNonInputEdges) {
  Rng rng(5);
  const auto cs = random_one_cycle(8, rng);
  const BccInstance inst = canonical_kt0_instance(cs);
  const auto edges = cs.directed_edges();
  EXPECT_THROW(port_preserving_crossing(inst, edges[0], edges[1]), std::invalid_argument);
  EXPECT_FALSE(instance_edges_independent(inst, edges[0], edges[1]));
}

TEST(Crossing, Kt1KnowledgeDefeatsCrossings) {
  // Section 1.1/4: "in KT-1 it is no longer possible to play edge-crossing
  // tricks". The crossing preserves port views but not the IDs behind the
  // ports — a KT-1 vertex sees the difference at round 0.
  Rng rng(41);
  const auto cs = random_one_cycle(9, rng);
  const BccInstance kt1(Wiring::kt1(9), cs.to_graph(), KnowledgeMode::kKT1);
  const auto [e1, e2] = pick_independent(cs);
  const BccInstance crossed = port_preserving_crossing(kt1, e1, e2);
  const auto factory =
      two_cycle_adversary_factory(AdversaryKind::kSilent, 0, always_yes_rule());
  BccSimulator s1(kt1, 1), s2(crossed, 1);
  const Transcript t1 = s1.run(factory, 0).transcript;
  const Transcript t2 = s2.run(factory, 0).transcript;
  std::size_t distinguishing = 0;
  for (VertexId v = 0; v < 9; ++v) {
    if (vertex_state_signature(kt1, t1, v) != vertex_state_signature(crossed, t2, v)) {
      ++distinguishing;
    }
  }
  // All four corner vertices see new IDs behind their ports immediately.
  EXPECT_EQ(distinguishing, 4u);
}

// ---- Lemma 3.4: indistinguishability ---------------------------------------

class Lemma34 : public ::testing::TestWithParam<AdversaryKind> {};

TEST_P(Lemma34, EqualEndpointSequencesImplyIndistinguishability) {
  const AdversaryKind kind = GetParam();
  Rng rng(11);
  const PublicCoins coins(3, 1024);
  // t = 2 keeps the ID-bit label alphabet small (ID mod 4), so same-label
  // independent pairs exist in most random 16-cycles.
  const unsigned t = 2;
  int verified = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto cs = random_one_cycle(16, rng);
    const BccInstance inst = random_kt0_instance(cs, rng);
    BccSimulator sim(inst, 1, &coins);
    const auto factory = two_cycle_adversary_factory(kind, t, always_yes_rule());
    const Transcript tr = sim.run(factory, t).transcript;

    // Find an independent pair whose tails broadcast the same sequence and
    // whose heads broadcast the same sequence.
    const auto edges = cs.directed_edges();
    for (std::size_t a = 0; a < edges.size(); ++a) {
      for (std::size_t b = a + 1; b < edges.size(); ++b) {
        const auto &e1 = edges[a], &e2 = edges[b];
        if (!cs.edges_independent(e1, e2)) continue;
        if (tr.sent_string(e1.tail) != tr.sent_string(e2.tail)) continue;
        if (tr.sent_string(e1.head) != tr.sent_string(e2.head)) continue;
        const BccInstance crossed = port_preserving_crossing(inst, e1, e2);
        BccSimulator sim2(crossed, 1, &coins);
        const Transcript tr2 = sim2.run(factory, t).transcript;
        for (VertexId v = 0; v < 16; ++v) {
          EXPECT_EQ(vertex_state_signature(inst, tr, v),
                    vertex_state_signature(crossed, tr2, v))
              << adversary_kind_name(kind) << " vertex " << v;
        }
        ++verified;
        goto next_trial;
      }
    }
  next_trial:;
  }
  EXPECT_GT(verified, 0) << "no same-label independent pair found in any trial";
}

INSTANTIATE_TEST_SUITE_P(AllKinds, Lemma34,
                         ::testing::ValuesIn(all_adversary_kinds()),
                         [](const auto& info) {
                           std::string name = adversary_kind_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Lemma34, DifferentSequencesCanBeDistinguished) {
  // Sanity inverse: with the id-bits adversary, crossing edges whose labels
  // differ generally changes some vertex's received bits.
  Rng rng(13);
  const auto cs = random_one_cycle(8, rng);
  const BccInstance inst = canonical_kt0_instance(cs);
  const auto factory = two_cycle_adversary_factory(AdversaryKind::kIdBits, 3, always_yes_rule());
  BccSimulator sim(inst, 1);
  const Transcript tr = sim.run(factory, 3).transcript;
  bool found_distinguishing = false;
  const auto edges = cs.directed_edges();
  for (std::size_t a = 0; a < edges.size() && !found_distinguishing; ++a) {
    for (std::size_t b = a + 1; b < edges.size() && !found_distinguishing; ++b) {
      const auto &e1 = edges[a], &e2 = edges[b];
      if (!cs.edges_independent(e1, e2)) continue;
      if (tr.sent_string(e1.tail) == tr.sent_string(e2.tail)) continue;
      const BccInstance crossed = port_preserving_crossing(inst, e1, e2);
      BccSimulator sim2(crossed, 1);
      const Transcript tr2 = sim2.run(factory, 3).transcript;
      for (VertexId v = 0; v < 8; ++v) {
        if (vertex_state_signature(inst, tr, v) != vertex_state_signature(crossed, tr2, v)) {
          found_distinguishing = true;
        }
      }
    }
  }
  EXPECT_TRUE(found_distinguishing);
}

// ---- Active edges ------------------------------------------------------------

TEST(ActiveEdges, ClassesPartitionAllEdges) {
  Rng rng(17);
  const auto cs = random_one_cycle(9, rng);
  const BccInstance inst = canonical_kt0_instance(cs);
  BccSimulator sim(inst, 1);
  const Transcript tr =
      sim.run(two_cycle_adversary_factory(AdversaryKind::kHashedId, 2, always_yes_rule()), 2)
          .transcript;
  const auto classes = edge_label_classes(cs, tr);
  std::size_t total = 0;
  for (const auto& c : classes) {
    total += c.edges.size();
    EXPECT_EQ(c.label.size(), 4u);  // 2t characters at t = 2
    for (const auto& e : c.edges) {
      EXPECT_EQ(tr.edge_label(e.tail, e.head), c.label);
    }
  }
  EXPECT_EQ(total, 9u);
  // Sorted largest-first.
  for (std::size_t i = 1; i < classes.size(); ++i) {
    EXPECT_GE(classes[i - 1].edges.size(), classes[i].edges.size());
  }
}

TEST(ActiveEdges, SilentAlgorithmHasOneClass) {
  Rng rng(19);
  const auto cs = random_one_cycle(7, rng);
  const BccInstance inst = canonical_kt0_instance(cs);
  BccSimulator sim(inst, 1);
  const Transcript tr =
      sim.run(two_cycle_adversary_factory(AdversaryKind::kSilent, 3, always_yes_rule()), 3)
          .transcript;
  const auto classes = edge_label_classes(cs, tr);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].label, "______");
  EXPECT_EQ(classes[0].edges.size(), 7u);
}

TEST(ActiveEdges, GreedyIndependentSubsetIsIndependentAndLarge) {
  Rng rng(23);
  const auto cs = random_one_cycle(12, rng);
  const auto all = cs.directed_edges();
  const auto sub = greedy_independent_subset(cs, all);
  for (std::size_t a = 0; a < sub.size(); ++a) {
    for (std::size_t b = a + 1; b < sub.size(); ++b) {
      EXPECT_TRUE(cs.edges_independent(sub[a], sub[b]));
    }
  }
  EXPECT_GE(sub.size(), 12u / 3);  // footnote 3: at least bn/3c
}

// ---- Indistinguishability graph ---------------------------------------------

TEST(IndistGraph, Lemma39SizeRatioTracksHarmonic) {
  for (std::size_t n : {7u, 8u, 9u}) {
    const auto g = build_indistinguishability_graph(n, all_edges_active());
    const double ratio = g.size_ratio();
    const double prediction = harmonic(n / 2) - 1.5;
    // Θ agreement: ratio / prediction within a mild constant band.
    EXPECT_GT(ratio / prediction, 0.4) << "n=" << n;
    EXPECT_LT(ratio / prediction, 2.5) << "n=" << n;
  }
}

TEST(IndistGraph, RoundZeroDegreesMatchClosedForms) {
  const std::size_t n = 8;
  const auto g = build_indistinguishability_graph(n, all_edges_active());
  // One-cycle degree: sum over 3 <= i <= n/2 of the distance-i pairs, i.e.
  // n per i < n/2 plus n/2 at i = n/2 — which equals n(n-5)/2. (The proof
  // sketch of Lemma 3.9 quotes n(n-3)/2; the difference is the two pairs per
  // edge whose only independent pairing re-crosses to another ONE-cycle and
  // therefore contributes no V2 neighbor. Same Θ.)
  for (std::size_t i = 0; i < g.one_cycles.size(); ++i) {
    EXPECT_EQ(g.neighbors(i).size(), n * (n - 5) / 2);
  }
  // Two-cycle with smaller cycle i has degree 2 * i * (n-i): picking one edge
  // from each cycle leaves two reconnecting pairings, each of which is a
  // crossing of a distinct one-cycle parent. (Lemma 3.9's proof counts
  // i(n-i) under its fixed orientation convention — same Θ.)
  const auto degrees = g.two_cycle_degrees();
  for (std::size_t j = 0; j < g.two_cycles.size(); ++j) {
    const std::size_t i = g.two_cycles[j].smallest_cycle_length();
    EXPECT_EQ(degrees[j], 2 * i * (n - i)) << "two-cycle " << j;
  }
}

TEST(IndistGraph, EdgesAreGenuineCrossings) {
  const auto g = build_indistinguishability_graph(7, all_edges_active());
  // Spot-check: every neighbor differs from the one-cycle by exactly 2 edges.
  for (std::size_t i = 0; i < 10; ++i) {
    const Graph gi = g.one_cycles[i].to_graph();
    for (std::uint32_t j : g.neighbors(i)) {
      const Graph gj = g.two_cycles[j].to_graph();
      std::size_t shared = 0;
      for (const Edge& e : gi.edges()) {
        if (gj.has_edge(e.u, e.v)) ++shared;
      }
      EXPECT_EQ(shared, 5u);  // n - 2 shared edges
    }
  }
}

TEST(IndistGraph, Lemma37ProfileMatchesFormula) {
  // With all edges active (d = n), I1 has n neighbors with the smaller
  // cycle's active count equal to i for 3 <= i < n/2 (n/2 pairs when i=n/2).
  const std::size_t n = 8;
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  const auto cs = CycleStructure::single_cycle(order);
  const auto profile = neighbor_degree_profile(cs, all_edges_active());
  EXPECT_EQ(profile.active_edges, n);
  EXPECT_EQ(profile.split_counts[3], n);      // i = 3
  EXPECT_EQ(profile.split_counts[4], n / 2);  // i = n/2: halved
}

// ---- Matching ---------------------------------------------------------------

TEST(Matching, SimpleCases) {
  // Perfect matching on K_{3,3}.
  std::vector<std::vector<std::uint32_t>> k33(3, {0, 1, 2});
  EXPECT_EQ(max_bipartite_matching(k33, 3), 3u);
  // Star: left {0,1,2} all pointing at right 0.
  std::vector<std::vector<std::uint32_t>> star(3, {0});
  EXPECT_EQ(max_bipartite_matching(star, 1), 1u);
  // Empty (spelled as CSR so the overload is unambiguous).
  CsrAdjacency empty;
  empty.offsets = {0, 0, 0};
  EXPECT_EQ(max_bipartite_matching(empty, 4), 0u);
}

TEST(Matching, KMatchingCloning) {
  // Two left nodes, four right nodes, complete: 2-matching saturates.
  std::vector<std::vector<std::uint32_t>> adj(2, {0, 1, 2, 3});
  EXPECT_TRUE(has_saturating_k_matching(adj, 4, 1));
  EXPECT_TRUE(has_saturating_k_matching(adj, 4, 2));
  EXPECT_FALSE(has_saturating_k_matching(adj, 4, 3));
  EXPECT_EQ(max_saturating_k(adj, 4, 10), 2u);
}

TEST(Matching, IsolatedLeftVerticesAreSkipped) {
  std::vector<std::vector<std::uint32_t>> adj{{0}, {}, {1}};
  EXPECT_TRUE(has_saturating_k_matching(adj, 2, 1));
}

TEST(Matching, MatchedPairsAreValid) {
  Rng rng(29);
  std::vector<std::vector<std::uint32_t>> adj(20);
  for (auto& nbrs : adj) {
    for (std::uint32_t r = 0; r < 15; ++r) {
      if (rng.next_bernoulli(0.2)) nbrs.push_back(r);
    }
  }
  HopcroftKarp hk(adj, 15);
  const std::size_t m = hk.max_matching();
  std::set<std::uint32_t> used;
  std::size_t matched = 0;
  for (std::uint32_t l = 0; l < 20; ++l) {
    const std::uint32_t r = hk.match_left()[l];
    if (r == HopcroftKarp::kUnmatched) continue;
    ++matched;
    EXPECT_TRUE(std::find(adj[l].begin(), adj[l].end(), r) != adj[l].end());
    EXPECT_TRUE(used.insert(r).second);
  }
  EXPECT_EQ(matched, m);
}

TEST(Matching, RoundZeroIndistGraphHasLargeMatching) {
  const auto g = build_indistinguishability_graph(8, all_edges_active());
  const std::size_t m = max_bipartite_matching(g.adj, g.two_cycles.size());
  // The smaller side (V2 here at n = 8) should saturate: every two-cycle is
  // reachable by crossing.
  EXPECT_EQ(m, std::min(g.one_cycles.size(), g.two_cycles.size()));
}

}  // namespace
}  // namespace bcclb

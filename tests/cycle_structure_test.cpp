// Tests for cycle covers, canonical forms, enumeration and the
// structure-level crossing operation (Definition 3.3's input-graph effect).
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/random.h"
#include "graph/components.h"
#include "graph/cycle_structure.h"
#include "graph/generators.h"

namespace bcclb {
namespace {

CycleStructure canon_cycle(std::initializer_list<VertexId> order) {
  std::vector<VertexId> v(order);
  return CycleStructure::single_cycle(v);
}

TEST(CycleStructure, CanonicalizationIsRotationAndReflectionInvariant) {
  const auto a = canon_cycle({0, 1, 2, 3, 4});
  const auto b = canon_cycle({2, 3, 4, 0, 1});
  const auto c = canon_cycle({0, 4, 3, 2, 1});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(a.key(), c.key());
}

TEST(CycleStructure, DistinctOrdersDiffer) {
  EXPECT_NE(canon_cycle({0, 1, 2, 3, 4}), canon_cycle({0, 2, 1, 3, 4}));
}

TEST(CycleStructure, SingleCycleValidation) {
  std::vector<VertexId> bad{0, 1, 1};
  EXPECT_THROW(CycleStructure::single_cycle(bad), std::invalid_argument);
  std::vector<VertexId> tooshort{0, 1};
  EXPECT_THROW(CycleStructure::single_cycle(tooshort), std::invalid_argument);
}

TEST(CycleStructure, FromGraphRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const auto cs = random_cycle_cover(15, 3, 3, rng);
    EXPECT_EQ(CycleStructure::from_graph(cs.to_graph()), cs);
  }
}

TEST(CycleStructure, FromGraphRejectsNonRegular) {
  EXPECT_THROW(CycleStructure::from_graph(path_graph(5)), std::invalid_argument);
}

TEST(CycleStructure, FromCyclesValidates) {
  EXPECT_THROW(CycleStructure::from_cycles(6, {{0, 1, 2}, {3, 4}}), std::invalid_argument);
  EXPECT_THROW(CycleStructure::from_cycles(6, {{0, 1, 2}, {2, 3, 4}}), std::invalid_argument);
  EXPECT_THROW(CycleStructure::from_cycles(7, {{0, 1, 2}, {3, 4, 5}}), std::invalid_argument);
}

TEST(CycleStructure, DirectedEdgesFollowCanonicalTraversal) {
  const auto cs = canon_cycle({0, 1, 2, 3});
  const auto edges = cs.directed_edges();
  ASSERT_EQ(edges.size(), 4u);
  // Canonical: starts at 0, second element is min(1, 3) = 1.
  EXPECT_EQ(edges[0], (DirectedEdge{0, 1}));
  EXPECT_EQ(edges[3], (DirectedEdge{3, 0}));
}

TEST(CycleStructure, IndependenceDefinition) {
  const auto cs = canon_cycle({0, 1, 2, 3, 4, 5});
  // Sharing a vertex: dependent.
  EXPECT_FALSE(cs.edges_independent({0, 1}, {1, 2}));
  // (0,1) and (2,3): candidate new edges (0,3) and (2,1) — (1,2) is an input
  // edge, so dependent.
  EXPECT_FALSE(cs.edges_independent({0, 1}, {2, 3}));
  // (0,1) and (3,4): new edges (0,4), (3,1) — neither exists. Independent.
  EXPECT_TRUE(cs.edges_independent({0, 1}, {3, 4}));
}

TEST(CycleStructure, CrossingSameCycleSplitsInTwo) {
  const auto cs = canon_cycle({0, 1, 2, 3, 4, 5, 6, 7});
  const auto crossed = cs.crossed({0, 1}, {4, 5});
  EXPECT_TRUE(crossed.is_two_cycle());
  // 0-1...4-5 crossing: cycles {0,5,6,7} and {1,2,3,4}.
  const Graph g = crossed.to_graph();
  EXPECT_TRUE(g.has_edge(0, 5));
  EXPECT_TRUE(g.has_edge(4, 1));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(4, 5));
  EXPECT_EQ(num_components(g), 2u);
}

TEST(CycleStructure, CrossingDifferentCyclesMerges) {
  const auto cs = CycleStructure::from_cycles(8, {{0, 1, 2, 3}, {4, 5, 6, 7}});
  const auto edges = cs.directed_edges();
  // Pick one clockwise edge from each cycle.
  DirectedEdge e1{0, 0}, e2{0, 0};
  bool got1 = false, got2 = false;
  for (const auto& e : edges) {
    if (!got1 && e.tail <= 3 && e.head <= 3) {
      e1 = e;
      got1 = true;
    } else if (!got2 && e.tail >= 4) {
      e2 = e;
      got2 = true;
    }
  }
  ASSERT_TRUE(got1 && got2);
  ASSERT_TRUE(cs.edges_independent(e1, e2));
  EXPECT_TRUE(cs.crossed(e1, e2).is_one_cycle());
}

TEST(CycleStructure, CrossingRequiresClockwiseInputEdges) {
  const auto cs = canon_cycle({0, 1, 2, 3, 4, 5});
  // (1,0) is the input edge with the wrong orientation.
  EXPECT_THROW(cs.crossed({1, 0}, {3, 4}), std::invalid_argument);
  // (0,2) is not an input edge at all.
  EXPECT_THROW(cs.crossed({0, 2}, {3, 4}), std::invalid_argument);
  // Dependent pair.
  EXPECT_THROW(cs.crossed({0, 1}, {1, 2}), std::invalid_argument);
}

TEST(CycleStructure, SmallestCycleLength) {
  const auto cs = CycleStructure::from_cycles(9, {{0, 1, 2}, {3, 4, 5, 6, 7, 8}});
  EXPECT_EQ(cs.smallest_cycle_length(), 3u);
  EXPECT_EQ(cs.num_cycles(), 2u);
}

class EnumerationCount : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EnumerationCount, OneCycleCountIsHalfFactorial) {
  const std::size_t n = GetParam();
  std::uint64_t expect = 1;
  for (std::uint64_t k = 2; k < n; ++k) expect *= k;
  expect /= 2;
  const auto v1 = all_one_cycle_structures(n);
  EXPECT_EQ(v1.size(), expect);
  // All distinct.
  std::set<std::string> keys;
  for (const auto& cs : v1) keys.insert(cs.key());
  EXPECT_EQ(keys.size(), v1.size());
}

TEST_P(EnumerationCount, TwoCycleCountMatchesDirectFormula) {
  const std::size_t n = GetParam();
  // Sum over the size i of the cycle containing vertex 0 (3 <= i <= n-3):
  // C(n-1, i-1) * (i-1)!/2 * (n-i-1)!/2.
  auto fact = [](std::size_t k) {
    double f = 1;
    for (std::size_t j = 2; j <= k; ++j) f *= static_cast<double>(j);
    return f;
  };
  double expect = 0;
  for (std::size_t i = 3; i + 3 <= n; ++i) {
    const double choose = fact(n - 1) / (fact(i - 1) * fact(n - i));
    const double ca = i == 3 ? 1 : fact(i - 1) / 2;
    const double cb = (n - i) == 3 ? 1 : fact(n - i - 1) / 2;
    expect += choose * ca * cb;
  }
  const auto v2 = all_two_cycle_structures(n);
  EXPECT_EQ(static_cast<double>(v2.size()), expect);
  for (const auto& cs : v2) {
    EXPECT_TRUE(cs.is_two_cycle());
    EXPECT_GE(cs.smallest_cycle_length(), 3u);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallN, EnumerationCount, ::testing::Values(6, 7, 8, 9));

TEST(Enumeration, CycleCoversGeneralizeOneAndTwo) {
  const auto all = all_cycle_covers(9, 3, 1, 3);
  const auto ones = all_one_cycle_structures(9);
  const auto twos = all_two_cycle_structures(9);
  std::size_t three_plus = 0;
  for (const auto& cs : all) {
    if (cs.num_cycles() == 3) ++three_plus;
  }
  EXPECT_EQ(all.size(), ones.size() + twos.size() + three_plus);
  EXPECT_GT(three_plus, 0u);
}

TEST(Enumeration, MinLenFourCoversForMultiCycle) {
  // MultiCycle instances: every cycle has length >= 4.
  const auto covers = all_cycle_covers(8, 4, 2, 2);
  for (const auto& cs : covers) {
    EXPECT_EQ(cs.num_cycles(), 2u);
    EXPECT_GE(cs.smallest_cycle_length(), 4u);
  }
  // Splits of 8 into two parts >= 4: only 4+4. Count = C(7,3)*3*3 = 315.
  EXPECT_EQ(covers.size(), 315u);
}

TEST(CycleStructure, CrossingMatchesPortLevelStructure) {
  // Structure-level crossing agrees with re-extracting from edge surgery.
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const auto cs = random_one_cycle(10, rng);
    const auto edges = cs.directed_edges();
    bool done = false;
    for (std::size_t a = 0; a < edges.size() && !done; ++a) {
      for (std::size_t b = a + 1; b < edges.size() && !done; ++b) {
        if (!cs.edges_independent(edges[a], edges[b])) continue;
        const auto crossed = cs.crossed(edges[a], edges[b]);
        EXPECT_TRUE(crossed.is_two_cycle());
        // Crossing preserves the number of vertices and 2-regularity.
        EXPECT_EQ(crossed.num_vertices(), 10u);
        EXPECT_TRUE(crossed.to_graph().is_regular(2));
        done = true;
      }
    }
    EXPECT_TRUE(done);
  }
}

}  // namespace
}  // namespace bcclb

// Tests for instance counts (closed forms) and the decision-rule optimizer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "bcc/algorithms/two_cycle_adversaries.h"
#include "common/mathutil.h"
#include "core/decision_optimizer.h"
#include "core/kt0_engine.h"
#include "crossing/instance_counts.h"
#include "graph/cycle_structure.h"

namespace bcclb {
namespace {

TEST(InstanceCounts, MatchEnumerationExactly) {
  for (std::size_t n = 6; n <= 9; ++n) {
    EXPECT_EQ(count_one_cycle_structures(n).to_u64(), all_one_cycle_structures(n).size())
        << "n=" << n;
    EXPECT_EQ(count_two_cycle_structures(n).to_u64(), all_two_cycle_structures(n).size())
        << "n=" << n;
  }
  // Per-split counts at n = 8 (seen in E3): 672 and 315.
  EXPECT_EQ(count_two_cycle_structures_with_smaller(8, 3).to_u64(), 672u);
  EXPECT_EQ(count_two_cycle_structures_with_smaller(8, 4).to_u64(), 315u);
}

TEST(InstanceCounts, RatioConvergesToHarmonic) {
  // Lemma 3.9: |V2|/|V1| = Θ(log n). The exact ratio is
  // Σ_{i=3}^{n/2} n/(2 i (n-i)) = (H_{n/2} + ln 2 - 3/2)/2 + o(1): the Θ of
  // the lemma with the constant pinned at 1/2 of the lemma's per-term upper
  // bound (the proof only needed |T_i| <= |V1| n/(i(n-i))).
  double prev_quotient = 2.0;
  for (std::size_t n : {10u, 20u, 50u, 100u, 200u}) {
    const double ratio = two_to_one_cycle_ratio(n);
    const double pred = harmonic(n / 2) - 1.5;
    const double quotient = ratio / pred;
    EXPECT_GT(quotient, 0.45) << "n=" << n;
    EXPECT_LT(quotient, 1.1) << "n=" << n;
    EXPECT_LE(quotient, prev_quotient + 0.02) << "n=" << n;  // decreasing toward 1/2
    prev_quotient = quotient;
  }
  const double asymptote =
      (harmonic(100) + std::log(2.0) - 1.5) / 2.0;  // exact up to O(1/n)
  EXPECT_NEAR(two_to_one_cycle_ratio(200), asymptote, 0.02);
}

TEST(InstanceCounts, ExactRatioFormula) {
  // ratio = sum_i n!/(i(n-i) * 4-or-8) / ((n-1)!/2) = sum n/(2 i (n-i)), with
  // the i = n/2 term halved. Check against the direct sum for n = 12.
  const std::size_t n = 12;
  double direct = 0.0;
  for (std::size_t i = 3; 2 * i <= n; ++i) {
    const double term = static_cast<double>(n) / (2.0 * i * (n - i));
    direct += (2 * i == n) ? term / 2 : term;
  }
  EXPECT_NEAR(two_to_one_cycle_ratio(n), direct, 1e-9);
}

TEST(DecisionOptimizer, SilentBroadcastsCannotBeatHalf) {
  // Silence makes YES and NO instances share all states (up to ports):
  // optimization cannot help, and inseparable mass keeps the error at 1/2.
  const auto factory = two_cycle_adversary_factory(AdversaryKind::kSilent, 2, always_yes_rule());
  const auto rep = optimize_decision_rule(7, 2, factory);
  EXPECT_NEAR(rep.greedy_error, 0.5, 0.02);
  EXPECT_EQ(rep.states_voting_no, 0u);
}

TEST(DecisionOptimizer, GreedyNeverWorseThanAlwaysYes) {
  const PublicCoins coins(5, 1024);
  for (const AdversaryKind kind :
       {AdversaryKind::kIdBits, AdversaryKind::kHashedId, AdversaryKind::kEcho}) {
    for (unsigned t : {1u, 2u}) {
      const auto factory = two_cycle_adversary_factory(kind, t, always_yes_rule());
      const auto rep = optimize_decision_rule(7, t, factory, &coins);
      EXPECT_LE(rep.greedy_error, rep.always_yes_error + 1e-12)
          << adversary_kind_name(kind) << " t=" << t;
    }
  }
}

TEST(DecisionOptimizer, GreedyRespectsTheMatchingFloor) {
  // The certified bound from the indistinguishability matching must lower
  // bound even the optimized rule's error.
  const PublicCoins coins(7, 1024);
  for (const AdversaryKind kind : {AdversaryKind::kIdBits, AdversaryKind::kEcho}) {
    const auto factory = two_cycle_adversary_factory(kind, 2, always_yes_rule());
    const auto matching = kt0_matching_experiment(7, 2, factory, &coins);
    const auto optimized = optimize_decision_rule(7, 2, factory, &coins);
    EXPECT_GE(optimized.greedy_error + 1e-9, matching.matching_error_bound)
        << adversary_kind_name(kind);
  }
}

TEST(DecisionOptimizer, ReportsTheExactErrorFractionAndTheRuleItself) {
  const auto factory = two_cycle_adversary_factory(AdversaryKind::kEcho, 1, always_yes_rule());
  const auto rep = optimize_decision_rule(7, 1, factory);
  // Exact scaled-integer accounting: denom = 2·|V1|·|V2|, and the double is
  // derived from the fraction, not accumulated separately.
  const std::uint64_t v1 = all_one_cycle_structures(7).size();
  const std::uint64_t v2 = all_two_cycle_structures(7).size();
  EXPECT_EQ(rep.greedy_error_den, 2 * v1 * v2);
  EXPECT_DOUBLE_EQ(rep.greedy_error, static_cast<double>(rep.greedy_error_num) /
                                         static_cast<double>(rep.greedy_error_den));
  // The rule travels with the report: one chosen id per NO-voting state,
  // each a real state, and the digest is the FNV-1a of the sorted id bytes.
  EXPECT_EQ(rep.chosen_no_states.size(), rep.states_voting_no);
  for (const std::uint32_t s : rep.chosen_no_states) EXPECT_LT(s, rep.num_states);
  EXPECT_NE(rep.rule_digest, 0u);
}

TEST(DecisionOptimizer, TieBreaksAndDigestsAreThreadCountInvariant) {
  // The greedy runs its simulation fan-out on a BatchRunner whose width
  // comes from BCCLB_THREADS; the exact-integer gains and the lowest-id tie
  // rule must make every field of the report bit-identical across widths.
  const auto factory = two_cycle_adversary_factory(AdversaryKind::kEcho, 2, always_yes_rule());
  const char* saved = std::getenv("BCCLB_THREADS");
  const std::string saved_value = saved == nullptr ? "" : saved;
  setenv("BCCLB_THREADS", "1", 1);
  const auto serial = optimize_decision_rule(7, 2, factory);
  setenv("BCCLB_THREADS", "8", 1);
  const auto wide = optimize_decision_rule(7, 2, factory);
  if (saved == nullptr) {
    unsetenv("BCCLB_THREADS");
  } else {
    setenv("BCCLB_THREADS", saved_value.c_str(), 1);
  }
  EXPECT_EQ(serial.chosen_no_states, wide.chosen_no_states);
  EXPECT_EQ(serial.rule_digest, wide.rule_digest);
  EXPECT_EQ(serial.greedy_error_num, wide.greedy_error_num);
  EXPECT_EQ(serial.greedy_error_den, wide.greedy_error_den);
  EXPECT_EQ(serial.num_states, wide.num_states);
  EXPECT_EQ(serial.inseparable_pairs, wide.inseparable_pairs);
}

TEST(DecisionOptimizer, RicherBroadcastsReduceError) {
  // The echo adversary at more rounds reveals more: the optimized error
  // should not increase with t.
  const auto mk = [](unsigned t) {
    return two_cycle_adversary_factory(AdversaryKind::kEcho, t, always_yes_rule());
  };
  const double e1 = optimize_decision_rule(7, 1, mk(1)).greedy_error;
  const double e3 = optimize_decision_rule(7, 3, mk(3)).greedy_error;
  EXPECT_LE(e3, e1 + 0.02);
  EXPECT_LT(e3, 0.5);  // talking must beat silence eventually
}

}  // namespace
}  // namespace bcclb

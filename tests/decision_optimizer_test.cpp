// Tests for instance counts (closed forms) and the decision-rule optimizer.
#include <gtest/gtest.h>

#include <cmath>

#include "bcc/algorithms/two_cycle_adversaries.h"
#include "common/mathutil.h"
#include "core/decision_optimizer.h"
#include "core/kt0_engine.h"
#include "crossing/instance_counts.h"
#include "graph/cycle_structure.h"

namespace bcclb {
namespace {

TEST(InstanceCounts, MatchEnumerationExactly) {
  for (std::size_t n = 6; n <= 9; ++n) {
    EXPECT_EQ(count_one_cycle_structures(n).to_u64(), all_one_cycle_structures(n).size())
        << "n=" << n;
    EXPECT_EQ(count_two_cycle_structures(n).to_u64(), all_two_cycle_structures(n).size())
        << "n=" << n;
  }
  // Per-split counts at n = 8 (seen in E3): 672 and 315.
  EXPECT_EQ(count_two_cycle_structures_with_smaller(8, 3).to_u64(), 672u);
  EXPECT_EQ(count_two_cycle_structures_with_smaller(8, 4).to_u64(), 315u);
}

TEST(InstanceCounts, RatioConvergesToHarmonic) {
  // Lemma 3.9: |V2|/|V1| = Θ(log n). The exact ratio is
  // Σ_{i=3}^{n/2} n/(2 i (n-i)) = (H_{n/2} + ln 2 - 3/2)/2 + o(1): the Θ of
  // the lemma with the constant pinned at 1/2 of the lemma's per-term upper
  // bound (the proof only needed |T_i| <= |V1| n/(i(n-i))).
  double prev_quotient = 2.0;
  for (std::size_t n : {10u, 20u, 50u, 100u, 200u}) {
    const double ratio = two_to_one_cycle_ratio(n);
    const double pred = harmonic(n / 2) - 1.5;
    const double quotient = ratio / pred;
    EXPECT_GT(quotient, 0.45) << "n=" << n;
    EXPECT_LT(quotient, 1.1) << "n=" << n;
    EXPECT_LE(quotient, prev_quotient + 0.02) << "n=" << n;  // decreasing toward 1/2
    prev_quotient = quotient;
  }
  const double asymptote =
      (harmonic(100) + std::log(2.0) - 1.5) / 2.0;  // exact up to O(1/n)
  EXPECT_NEAR(two_to_one_cycle_ratio(200), asymptote, 0.02);
}

TEST(InstanceCounts, ExactRatioFormula) {
  // ratio = sum_i n!/(i(n-i) * 4-or-8) / ((n-1)!/2) = sum n/(2 i (n-i)), with
  // the i = n/2 term halved. Check against the direct sum for n = 12.
  const std::size_t n = 12;
  double direct = 0.0;
  for (std::size_t i = 3; 2 * i <= n; ++i) {
    const double term = static_cast<double>(n) / (2.0 * i * (n - i));
    direct += (2 * i == n) ? term / 2 : term;
  }
  EXPECT_NEAR(two_to_one_cycle_ratio(n), direct, 1e-9);
}

TEST(DecisionOptimizer, SilentBroadcastsCannotBeatHalf) {
  // Silence makes YES and NO instances share all states (up to ports):
  // optimization cannot help, and inseparable mass keeps the error at 1/2.
  const auto factory = two_cycle_adversary_factory(AdversaryKind::kSilent, 2, always_yes_rule());
  const auto rep = optimize_decision_rule(7, 2, factory);
  EXPECT_NEAR(rep.greedy_error, 0.5, 0.02);
  EXPECT_EQ(rep.states_voting_no, 0u);
}

TEST(DecisionOptimizer, GreedyNeverWorseThanAlwaysYes) {
  const PublicCoins coins(5, 1024);
  for (const AdversaryKind kind :
       {AdversaryKind::kIdBits, AdversaryKind::kHashedId, AdversaryKind::kEcho}) {
    for (unsigned t : {1u, 2u}) {
      const auto factory = two_cycle_adversary_factory(kind, t, always_yes_rule());
      const auto rep = optimize_decision_rule(7, t, factory, &coins);
      EXPECT_LE(rep.greedy_error, rep.always_yes_error + 1e-12)
          << adversary_kind_name(kind) << " t=" << t;
    }
  }
}

TEST(DecisionOptimizer, GreedyRespectsTheMatchingFloor) {
  // The certified bound from the indistinguishability matching must lower
  // bound even the optimized rule's error.
  const PublicCoins coins(7, 1024);
  for (const AdversaryKind kind : {AdversaryKind::kIdBits, AdversaryKind::kEcho}) {
    const auto factory = two_cycle_adversary_factory(kind, 2, always_yes_rule());
    const auto matching = kt0_matching_experiment(7, 2, factory, &coins);
    const auto optimized = optimize_decision_rule(7, 2, factory, &coins);
    EXPECT_GE(optimized.greedy_error + 1e-9, matching.matching_error_bound)
        << adversary_kind_name(kind);
  }
}

TEST(DecisionOptimizer, RicherBroadcastsReduceError) {
  // The echo adversary at more rounds reveals more: the optimized error
  // should not increase with t.
  const auto mk = [](unsigned t) {
    return two_cycle_adversary_factory(AdversaryKind::kEcho, t, always_yes_rule());
  };
  const double e1 = optimize_decision_rule(7, 1, mk(1)).greedy_error;
  const double e3 = optimize_decision_rule(7, 3, mk(3)).greedy_error;
  EXPECT_LE(e3, e1 + 0.02);
  EXPECT_LT(e3, 0.5);  // talking must beat silence eventually
}

}  // namespace
}  // namespace bcclb

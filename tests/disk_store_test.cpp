// Durable artifact tier (serve/disk_store.h) and the deterministic chaos
// layer (serve/chaos.h).
//
// The disk tests exercise the crash shapes the store is built to absorb:
// a SIGKILL mid-write (temp file visible, no entry), bit rot (quarantine,
// never serve), and a daemon restart (byte-identical verified reload). Each
// test gets its own mkdtemp directory so runs never interfere.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bcc/checkpoint.h"
#include "common/errors.h"
#include "serve/chaos.h"
#include "serve/disk_store.h"

namespace bcclb {
namespace {

// Fresh store directory per test, removed (best-effort) on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/bcclb_disk_store_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path = made != nullptr ? made : "";
  }
  ~TempDir() {
    if (path.empty()) return;
    // Entries, quarantined entries, stray temp files — then the directory.
    const std::string cleanup = "rm -rf '" + path + "'";
    [[maybe_unused]] const int rc = std::system(cleanup.c_str());
  }
};

// ---- disk store ------------------------------------------------------------

TEST(DiskStore, RoundTripsBytesExactlyAcrossInstances) {
  TempDir dir;
  // Artifacts with NUL bytes, no trailing newline, and embedded header-like
  // lines must all survive byte-exact — the format is length-delimited.
  const std::string artifacts[] = {
      "plain artifact\n",
      std::string("nul\0bytes\0inside", 16),
      "no trailing newline",
      "digest 0000000000000000\nlen 3\nlooks like a header",
      "",
  };
  {
    DiskStore store(dir.path);
    for (std::uint64_t key = 0; key < std::size(artifacts); ++key) {
      store.insert(key, artifacts[key]);
    }
    EXPECT_EQ(store.stats().writes, std::size(artifacts));
    EXPECT_EQ(store.entry_count(), std::size(artifacts));
  }
  // A second instance over the same directory — the daemon-restart shape.
  DiskStore reopened(dir.path);
  for (std::uint64_t key = 0; key < std::size(artifacts); ++key) {
    const auto loaded = reopened.lookup(key);
    ASSERT_TRUE(loaded.has_value()) << key;
    EXPECT_EQ(*loaded, artifacts[key]) << key;
  }
  const DiskStoreStats stats = reopened.stats();
  EXPECT_EQ(stats.hits, std::size(artifacts));
  EXPECT_EQ(stats.quarantined, 0u);
}

TEST(DiskStore, MissesAreCountedNotFatal) {
  TempDir dir;
  DiskStore store(dir.path);
  EXPECT_FALSE(store.lookup(42).has_value());
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(store.stats().hits, 0u);
}

TEST(DiskStore, CrashMidWriteLeavesNoVisibleEntry) {
  TempDir dir;
  DiskStore store(dir.path);
  // The atomic-write discipline stages bytes in `<entry>.tmp` and renames.
  // A SIGKILL between open and rename leaves exactly this file behind:
  const std::string orphan = store.entry_path(7) + ".tmp";
  {
    std::FILE* f = std::fopen(orphan.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("bccd-artifact v1\nkey 00000000000000", f);  // torn mid-header
    std::fclose(f);
  }
  // The torn temp file is invisible: not an entry, not a hit, not quarantined.
  EXPECT_EQ(store.entry_count(), 0u);
  EXPECT_FALSE(store.lookup(7).has_value());
  EXPECT_EQ(store.stats().quarantined, 0u);
  // A completed write for the same key lands next to the orphan and wins.
  store.insert(7, "recomputed after the crash");
  const auto loaded = store.lookup(7);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "recomputed after the crash");
}

TEST(DiskStore, BitRotIsQuarantinedAndRecomputable) {
  TempDir dir;
  DiskStore store(dir.path);
  const std::string artifact = "rank certificate: full rank = yes\n";
  store.insert(9, artifact);
  ASSERT_TRUE(store.corrupt_entry_for_test(9));

  // The rotted entry is never served: quarantined, counted, reported a miss.
  EXPECT_FALSE(store.lookup(9).has_value());
  DiskStoreStats stats = store.stats();
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(store.entry_count(), 0u);  // moved aside to .quarantined

  // Transparent recompute path: a fresh insert restores service.
  store.insert(9, artifact);
  const auto again = store.lookup(9);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, artifact);
  EXPECT_EQ(store.stats().quarantined, 1u);  // the old rot, not the new entry
}

TEST(DiskStore, TruncatedEntryIsQuarantined) {
  TempDir dir;
  DiskStore store(dir.path);
  store.insert(3, std::string(100, 'z'));
  // Torn tail: rewrite the entry file with its last 40 bytes missing (the
  // shape of a torn non-atomic write or a truncating filesystem error).
  const std::string path = store.entry_path(3);
  const std::string whole = read_file(path);
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(whole.data(), 1, whole.size() - 40, f);
    std::fclose(f);
  }
  EXPECT_FALSE(store.lookup(3).has_value());
  EXPECT_EQ(store.stats().quarantined, 1u);
}

TEST(DiskStore, KeyFilenameMismatchIsQuarantined) {
  TempDir dir;
  DiskStore store(dir.path);
  store.insert(11, "artifact for key eleven");
  // A rename gone wrong (or an operator copying entries around): the file
  // sits at key 12's path but records key 11. Content addressing must refuse.
  ASSERT_EQ(std::rename(store.entry_path(11).c_str(), store.entry_path(12).c_str()), 0);
  EXPECT_FALSE(store.lookup(12).has_value());
  EXPECT_EQ(store.stats().quarantined, 1u);
}

TEST(DiskStore, RejectsUnusableDirectory) {
  EXPECT_THROW(DiskStore("/proc/definitely/not/creatable"), ServeError);
}

// ---- chaos spec parsing ----------------------------------------------------

TEST(ChaosSpec, ParsesEveryKeyAndDefaultsToNoFaults) {
  const ServeFaultPlan none = parse_serve_fault_spec("");
  EXPECT_FALSE(none.enabled());

  const ServeFaultPlan plan = parse_serve_fault_spec(
      "seed=7,crash-after=40,stall-every=3,stall-ms=20,corrupt-response-every=5,"
      "corrupt-disk-every=4");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_EQ(plan.crash_after, 40u);
  EXPECT_EQ(plan.stall_every, 3u);
  EXPECT_EQ(plan.stall_ms, 20u);
  EXPECT_EQ(plan.corrupt_response_every, 5u);
  EXPECT_EQ(plan.corrupt_disk_every, 4u);
  EXPECT_TRUE(plan.enabled());
}

TEST(ChaosSpec, MalformedSpecsThrowLoudly) {
  EXPECT_THROW(parse_serve_fault_spec("unknown-key=1"), ServeError);
  EXPECT_THROW(parse_serve_fault_spec("crash-after"), ServeError);       // no value
  EXPECT_THROW(parse_serve_fault_spec("crash-after=abc"), ServeError);   // not a number
  EXPECT_THROW(parse_serve_fault_spec("crash-after=-1"), ServeError);    // signed
  EXPECT_THROW(parse_serve_fault_spec("crash-after=1x"), ServeError);    // trailing junk
  EXPECT_THROW(parse_serve_fault_spec("stall-ms=20"), ServeError);       // needs stall-every
  EXPECT_THROW(parse_serve_fault_spec("seed=1,,seed=2"), ServeError);    // empty field
}

TEST(ChaosSpec, EnvVariableFollowsTheStrictDiscipline) {
  ASSERT_EQ(unsetenv("BCCLB_SERVE_FAULTS"), 0);
  EXPECT_FALSE(serve_fault_plan_from_env().has_value());
  ASSERT_EQ(setenv("BCCLB_SERVE_FAULTS", "seed=5,stall-every=2,stall-ms=1", 1), 0);
  const auto plan = serve_fault_plan_from_env();
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->stall_every, 2u);
  ASSERT_EQ(setenv("BCCLB_SERVE_FAULTS", "garbage", 1), 0);
  EXPECT_THROW(serve_fault_plan_from_env(), ServeError);
  ASSERT_EQ(unsetenv("BCCLB_SERVE_FAULTS"), 0);
}

// ---- chaos injector determinism -------------------------------------------

TEST(ChaosInjector, ScheduleIsAPureFunctionOfPlanAndCallSequence) {
  ServeFaultPlan plan;
  plan.seed = 2019;
  plan.corrupt_response_every = 3;
  plan.stall_every = 2;
  plan.stall_ms = 5;

  // Two injectors over the same plan, driven through the same call sequence,
  // must make identical decisions — byte indices and masks included.
  ServeFaultInjector a(plan), b(plan);
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(a.stall_for_response(), b.stall_for_response()) << i;
    std::size_t idx_a = 0, idx_b = 0;
    unsigned char mask_a = 0, mask_b = 0;
    const bool hit_a = a.corrupt_response(100, idx_a, mask_a);
    const bool hit_b = b.corrupt_response(100, idx_b, mask_b);
    EXPECT_EQ(hit_a, hit_b) << i;
    if (hit_a) {
      EXPECT_EQ(idx_a, idx_b) << i;
      EXPECT_EQ(mask_a, mask_b) << i;
      EXPECT_LT(idx_a, 100u) << i;
      EXPECT_NE(mask_a, 0) << i;  // a zero mask would be a no-op "fault"
    }
  }
  EXPECT_EQ(a.responses_corrupted(), 8u);  // every 3rd of 24
  EXPECT_EQ(a.stalls_injected(), 12u);     // every 2nd of 24
  EXPECT_EQ(a.responses_corrupted(), b.responses_corrupted());
  EXPECT_EQ(a.stalls_injected(), b.stalls_injected());
}

TEST(ChaosInjector, CrashFiresExactlyOnceAtTheConfiguredOrdinal) {
  ServeFaultPlan plan;
  plan.crash_after = 4;
  ServeFaultInjector injector(plan);
  int fired_at = -1;
  for (int i = 1; i <= 10; ++i) {
    if (injector.should_crash_before_reply()) {
      EXPECT_EQ(fired_at, -1) << "crash fired twice";
      fired_at = i;
    }
  }
  EXPECT_EQ(fired_at, 4);
}

TEST(ChaosInjector, DisabledFaultsNeverFire) {
  ServeFaultInjector injector(ServeFaultPlan{});
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(injector.should_crash_before_reply());
    EXPECT_EQ(injector.stall_for_response(), 0u);
    std::size_t idx = 0;
    unsigned char mask = 0;
    EXPECT_FALSE(injector.corrupt_response(64, idx, mask));
    EXPECT_FALSE(injector.should_corrupt_disk_entry());
  }
  EXPECT_EQ(injector.stalls_injected(), 0u);
  EXPECT_EQ(injector.responses_corrupted(), 0u);
  EXPECT_EQ(injector.disk_entries_corrupted(), 0u);
}

}  // namespace
}  // namespace bcclb

// Fault-injection layer: plan determinism, injection semantics (crash-stop /
// drop / flip / byzantine), the zero-cost guarantee for fault-free runs,
// replay verification, per-job failure isolation in BatchRunner, watchdogs,
// and the transient-retry policy.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bcc/algorithms/boruvka.h"
#include "bcc/algorithms/min_id_flood.h"
#include "bcc/batch_runner.h"
#include "bcc/faults.h"
#include "bcc/round_engine.h"
#include "common/errors.h"
#include "common/random.h"
#include "core/fault_tolerance.h"
#include "graph/generators.h"

namespace bcclb {
namespace {

// Broadcasts a fixed `bits`-wide value every round and finishes after
// `rounds` rounds — a wire probe: the transcript shows exactly what the
// injector put on the channel, independent of any algorithm's parsing.
class ConstantBroadcaster : public VertexAlgorithm {
 public:
  ConstantBroadcaster(std::uint64_t value, unsigned bits, unsigned rounds)
      : value_(value), bits_(bits), rounds_(rounds) {}

  void init(const LocalView&) override {}
  Message broadcast(unsigned) override { return Message::bits(value_, bits_); }
  void receive(unsigned round, std::span<const Message>) override { seen_ = round + 1; }
  bool finished() const override { return seen_ >= rounds_; }
  bool decide() const override { return true; }

 private:
  std::uint64_t value_ = 0;
  unsigned bits_ = 1;
  unsigned rounds_ = 1;
  unsigned seen_ = 0;
};

AlgorithmFactory constant_factory(std::uint64_t value, unsigned bits, unsigned rounds) {
  return [=] { return std::make_unique<ConstantBroadcaster>(value, bits, rounds); };
}

class NeverFinishes : public ConstantBroadcaster {
 public:
  NeverFinishes() : ConstantBroadcaster(1, 1, 1) {}
  bool finished() const override { return false; }
};

BccInstance small_instance(std::size_t n = 6, std::uint64_t seed = 3) {
  Rng rng(seed);
  return BccInstance::kt1(random_one_cycle(n, rng).to_graph());
}

RunResult run_with_plan(const BccInstance& instance, const AlgorithmFactory& factory,
                        unsigned bandwidth, unsigned max_rounds, const FaultPlan& plan) {
  RunOptions options;
  options.faults = &plan;
  RoundEngine engine;
  return engine.run(instance, bandwidth, factory, max_rounds, options);
}

TEST(FaultPlan, RandomIsDeterministicInItsSeed) {
  FaultCounts counts;
  counts.crashes = 2;
  counts.drops = 3;
  counts.flips = 2;
  counts.byzantine = 1;
  const FaultPlan a = FaultPlan::random(99, 10, 6, counts);
  const FaultPlan b = FaultPlan::random(99, 10, 6, counts);
  EXPECT_EQ(a.events(), b.events());
  EXPECT_EQ(a.events().size(), counts.total());

  const FaultPlan c = FaultPlan::random(100, 10, 6, counts);
  EXPECT_NE(a.events(), c.events());
}

TEST(FaultPlan, RandomCrashVictimsAreDistinct) {
  FaultCounts counts;
  counts.crashes = 5;
  const FaultPlan plan = FaultPlan::random(7, 5, 4, counts);
  EXPECT_EQ(plan.crash_victims().size(), 5u);  // deduplicated and sorted
}

TEST(FaultInjection, CrashStopSilencesFromItsRoundOn) {
  const BccInstance instance = small_instance();
  FaultPlan plan;
  plan.crash(/*vertex=*/0, /*round=*/1);
  const RunResult r = run_with_plan(instance, constant_factory(1, 1, 4), 1, 10, plan);

  ASSERT_EQ(r.rounds_executed, 4u);
  EXPECT_FALSE(r.transcript.sent(0, 0).is_silent());
  for (unsigned t = 1; t < 4; ++t) {
    EXPECT_TRUE(r.transcript.sent(0, t).is_silent()) << "round " << t;
  }
  // Every other vertex broadcasts every round.
  for (unsigned t = 0; t < 4; ++t) EXPECT_FALSE(r.transcript.sent(1, t).is_silent());

  EXPECT_EQ(r.crashed_vertices, std::vector<VertexId>{0});
  // Logged once, at the crash round.
  ASSERT_EQ(r.faults_applied.size(), 1u);
  EXPECT_EQ(r.faults_applied[0].kind, FaultKind::kCrashStop);
  EXPECT_EQ(r.faults_applied[0].round, 1u);
  EXPECT_TRUE(r.faults_applied[0].after.is_silent());
}

TEST(FaultInjection, CrashedVerticesCountAsFinished) {
  const BccInstance instance = small_instance(4);
  FaultPlan plan;
  for (VertexId v = 0; v < 4; ++v) plan.crash(v, 0);
  const RunResult r = run_with_plan(
      instance, [] { return std::make_unique<NeverFinishes>(); }, 1, 50, plan);
  // All four vertices crash at round 0, so the run terminates immediately
  // instead of burning 50 rounds against finished() == false.
  EXPECT_LE(r.rounds_executed, 1u);
  EXPECT_TRUE(r.all_finished);
  EXPECT_EQ(r.crashed_vertices.size(), 4u);
}

TEST(FaultInjection, DropSilencesExactlyOneRound) {
  const BccInstance instance = small_instance();
  FaultPlan plan;
  plan.drop(/*vertex=*/2, /*round=*/1);
  const RunResult r = run_with_plan(instance, constant_factory(1, 1, 3), 1, 10, plan);

  ASSERT_EQ(r.rounds_executed, 3u);
  EXPECT_FALSE(r.transcript.sent(2, 0).is_silent());
  EXPECT_TRUE(r.transcript.sent(2, 1).is_silent());
  EXPECT_FALSE(r.transcript.sent(2, 2).is_silent());
  EXPECT_TRUE(r.crashed_vertices.empty());
}

TEST(FaultInjection, FlipXorsTheBroadcastAndLogsBeforeAfter) {
  const BccInstance instance = small_instance();
  FaultPlan plan;
  plan.flip(/*vertex=*/1, /*round=*/0, /*mask=*/0b011);
  const RunResult r = run_with_plan(instance, constant_factory(0b101, 3, 2), 3, 10, plan);

  EXPECT_EQ(r.transcript.sent(1, 0).value(), 0b110u);
  EXPECT_EQ(r.transcript.sent(1, 1).value(), 0b101u);  // only round 0 is hit

  ASSERT_EQ(r.faults_applied.size(), 1u);
  EXPECT_EQ(r.faults_applied[0].kind, FaultKind::kFlipBits);
  EXPECT_EQ(r.faults_applied[0].before.value(), 0b101u);
  EXPECT_EQ(r.faults_applied[0].after.value(), 0b110u);
}

TEST(FaultInjection, FlipMaskIsTruncatedToTheMessageLength) {
  const BccInstance instance = small_instance();
  FaultPlan plan;
  plan.flip(/*vertex=*/0, /*round=*/0, /*mask=*/~0ULL);
  const RunResult r = run_with_plan(instance, constant_factory(0b1, 1, 1), 1, 5, plan);
  // A 64-bit mask against a 1-bit message flips just that bit; the result
  // still fits the bandwidth.
  EXPECT_EQ(r.transcript.sent(0, 0).value(), 0u);
  EXPECT_EQ(r.transcript.sent(0, 0).num_bits(), 1u);
}

TEST(FaultInjection, ByzantineReplacesTheBroadcast) {
  const BccInstance instance = small_instance();
  FaultPlan plan;
  plan.byzantine(/*vertex=*/3, /*round=*/1, /*value=*/0b10, /*bits=*/2);
  const RunResult r = run_with_plan(instance, constant_factory(0b11, 2, 3), 2, 10, plan);
  EXPECT_EQ(r.transcript.sent(3, 1).value(), 0b10u);
  EXPECT_EQ(r.transcript.sent(3, 0).value(), 0b11u);
}

TEST(FaultInjection, OversizedByzantineThrowsWithContext) {
  const BccInstance instance = small_instance();
  FaultPlan plan;
  plan.byzantine(/*vertex=*/2, /*round=*/1, /*value=*/0, /*bits=*/5);  // bandwidth is 2
  try {
    run_with_plan(instance, constant_factory(0b11, 2, 3), 2, 10, plan);
    FAIL() << "expected FaultInjectionError";
  } catch (const FaultInjectionError& e) {
    EXPECT_TRUE(e.transient());
    EXPECT_EQ(e.context().vertex, 2);
    EXPECT_EQ(e.context().round, 1);
    EXPECT_NE(e.context().instance_digest, 0u);
    EXPECT_NE(std::string(e.what()).find("vertex 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("round 1"), std::string::npos);
  }
}

TEST(FaultInjection, EmptyOrAbsentPlanIsBitIdenticalToThePlainOverload) {
  Rng rng(11);
  const BccInstance instance = BccInstance::kt1(random_gnp(9, 0.4, rng));
  const unsigned cap = BoruvkaAlgorithm::max_rounds(9, 2);

  RoundEngine engine;
  const RunResult plain = engine.run(instance, 2, boruvka_factory(), cap);

  const RunResult defaulted = engine.run(instance, 2, boruvka_factory(), cap, RunOptions{});

  FaultPlan empty_plan;
  RunOptions with_empty;
  with_empty.faults = &empty_plan;
  const RunResult empty = engine.run(instance, 2, boruvka_factory(), cap, with_empty);

  for (const RunResult* r : {&defaulted, &empty}) {
    EXPECT_EQ(r->transcript.digest(), plain.transcript.digest());
    EXPECT_EQ(r->decision, plain.decision);
    EXPECT_EQ(r->rounds_executed, plain.rounds_executed);
    EXPECT_EQ(r->total_bits_broadcast, plain.total_bits_broadcast);
    EXPECT_TRUE(r->faults_applied.empty());
    EXPECT_TRUE(r->crashed_vertices.empty());
  }
}

TEST(FaultInjection, RequireAllFinishedThrowsRoundLimitError) {
  const BccInstance instance = small_instance(4);
  RunOptions options;
  options.require_all_finished = true;
  RoundEngine engine;
  EXPECT_THROW(engine.run(
                   instance, 1, [] { return std::make_unique<NeverFinishes>(); }, 3, options),
               RoundLimitError);
  // Without strict mode the same run reports all_finished = false instead.
  const RunResult r =
      engine.run(instance, 1, [] { return std::make_unique<NeverFinishes>(); }, 3);
  EXPECT_FALSE(r.all_finished);
}

TEST(ReplayVerification, FaultyRunsReplayBitIdentically) {
  const BccInstance instance = small_instance(8);
  FaultCounts counts;
  counts.flips = 2;
  const FaultPlan plan = FaultPlan::random(5, 8, 3, counts);
  const ReplayReport rep = verify_replay(instance, 2, boruvka_factory(),
                                         BoruvkaAlgorithm::max_rounds(8, 2),
                                         CoinSpec::none(), &plan);
  EXPECT_FALSE(rep.errored);
  EXPECT_TRUE(rep.deterministic);
  EXPECT_EQ(rep.digest_first, rep.digest_second);
}

TEST(ReplayVerification, DeterministicEvenWhenTheAlgorithmRejectsFaults) {
  // Flooding reads every inbox value, so a crash-induced silence makes it
  // throw; the thrown error is the run's outcome and must replay too.
  const BccInstance instance = small_instance(8);
  FaultPlan plan;
  plan.crash(0, 0);
  const ReplayReport rep = verify_replay(instance, 4, min_id_flood_factory(),
                                         MinIdFloodAlgorithm::rounds_needed(8),
                                         CoinSpec::none(), &plan);
  EXPECT_TRUE(rep.errored);
  EXPECT_TRUE(rep.deterministic);
}

TEST(BatchReport, OnePoisonedJobDoesNotCostTheSweep) {
  Rng rng(21);
  std::vector<BatchJob> jobs;
  for (unsigned i = 0; i < 6; ++i) {
    const BccInstance instance = BccInstance::kt1(random_gnp(8, 0.5, rng));
    BatchJob job{instance, boruvka_factory(), 2, BoruvkaAlgorithm::max_rounds(8, 2),
                 CoinSpec::none()};
    if (i == 2) job.faults.byzantine(0, 0, 0, /*bits=*/10);  // exceeds bandwidth: throws
    jobs.push_back(std::move(job));
  }

  const BatchReport report = BatchRunner(4).run_reported(jobs);
  EXPECT_EQ(report.num_ok, 5u);
  EXPECT_EQ(report.num_failed, 1u);
  EXPECT_EQ(report.first_failure(), 2u);
  EXPECT_FALSE(report.all_ok());
  EXPECT_EQ(report.jobs[2].status, JobStatus::kFailed);
  EXPECT_EQ(report.jobs[2].error_kind, "FaultInjectionError");
  for (unsigned i = 0; i < 6; ++i) {
    if (i == 2) continue;
    ASSERT_TRUE(report.jobs[i].ok()) << "job " << i;
    EXPECT_GT(report.jobs[i].result.rounds_executed, 0u) << "job " << i;
  }

  // The same poisoned batch through the all-or-nothing API rethrows.
  EXPECT_THROW(BatchRunner(4).run(jobs), FaultInjectionError);
}

TEST(BatchReport, FaultyBatchesAreBitIdenticalAcrossThreadCounts) {
  Rng rng(31);
  std::vector<BatchJob> jobs;
  for (unsigned i = 0; i < 12; ++i) {
    const std::size_t n = 6 + (i % 4);
    BatchJob job{BccInstance::kt1(random_one_cycle(n, rng).to_graph()), boruvka_factory(), 2,
                 BoruvkaAlgorithm::max_rounds(n, 2), CoinSpec::none()};
    FaultCounts counts;
    counts.drops = i % 3;
    counts.flips = i % 2;
    job.faults = FaultPlan::random(1000 + i, n, 4, counts);
    jobs.push_back(std::move(job));
  }

  const BatchReport serial = BatchRunner(1).run_reported(jobs);
  const BatchReport parallel = BatchRunner(8).run_reported(jobs);
  ASSERT_EQ(serial.jobs.size(), parallel.jobs.size());
  for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
    EXPECT_EQ(serial.jobs[i].status, parallel.jobs[i].status) << "job " << i;
    EXPECT_EQ(serial.jobs[i].error, parallel.jobs[i].error) << "job " << i;
    if (serial.jobs[i].ok() && parallel.jobs[i].ok()) {
      EXPECT_EQ(serial.jobs[i].result.transcript.digest(),
                parallel.jobs[i].result.transcript.digest())
          << "job " << i;
      EXPECT_EQ(serial.jobs[i].result.decision, parallel.jobs[i].result.decision) << "job " << i;
    }
  }
}

TEST(BatchReport, WatchdogTimesOutOneJobAndSparesTheRest) {
  Rng rng(41);
  std::vector<BatchJob> jobs;
  for (unsigned i = 0; i < 4; ++i) {
    BatchJob job{BccInstance::kt1(random_one_cycle(8, rng).to_graph()), boruvka_factory(), 2,
                 BoruvkaAlgorithm::max_rounds(8, 2), CoinSpec::none()};
    if (i == 1) job.deadline_ns = 1;  // expires at the first per-round check
    jobs.push_back(std::move(job));
  }

  const BatchReport report = BatchRunner(2).run_reported(jobs);
  EXPECT_EQ(report.jobs[1].status, JobStatus::kTimedOut);
  EXPECT_EQ(report.jobs[1].error_kind, "JobTimeoutError");
  EXPECT_EQ(report.num_timed_out, 1u);
  EXPECT_EQ(report.num_ok, 3u);
  for (unsigned i : {0u, 2u, 3u}) EXPECT_TRUE(report.jobs[i].ok()) << "job " << i;
}

TEST(BatchReport, TransientFaultRecoversAfterOneRetry) {
  Rng rng(51);
  const BccInstance instance = BccInstance::kt1(random_one_cycle(8, rng).to_graph());
  BatchJob job{instance, boruvka_factory(), 2, BoruvkaAlgorithm::max_rounds(8, 2),
               CoinSpec::none()};
  job.faults.byzantine(0, 0, 0, /*bits=*/10).set_transient();

  BatchPolicy policy;
  policy.max_retries = 1;
  const BatchReport report = BatchRunner(1).run_reported({job}, policy);
  ASSERT_TRUE(report.jobs[0].ok());
  EXPECT_EQ(report.jobs[0].attempts, 2u);
  // Attempt 1 runs fault-free, so the result matches an unfaulted run.
  RoundEngine engine;
  const RunResult clean = engine.run(instance, 2, boruvka_factory(), job.max_rounds);
  EXPECT_EQ(report.jobs[0].result.transcript.digest(), clean.transcript.digest());
}

TEST(BatchReport, PersistentFaultExhaustsItsRetryBudget) {
  Rng rng(61);
  BatchJob job{BccInstance::kt1(random_one_cycle(8, rng).to_graph()), boruvka_factory(), 2,
               BoruvkaAlgorithm::max_rounds(8, 2), CoinSpec::none()};
  // Not transient: the plan fires on every attempt, so every retry fails.
  job.faults.byzantine(0, 0, 0, /*bits=*/10);

  BatchPolicy policy;
  policy.max_retries = 2;
  const BatchReport report = BatchRunner(1).run_reported({job}, policy);
  EXPECT_EQ(report.jobs[0].status, JobStatus::kFailed);
  EXPECT_EQ(report.jobs[0].attempts, 3u);  // initial run + 2 retries

  // With no retry budget there is exactly one attempt.
  const BatchReport no_retry = BatchRunner(1).run_reported({job});
  EXPECT_EQ(no_retry.jobs[0].attempts, 1u);
}

TEST(FaultSweep, SmokeAndShape) {
  FaultSweepConfig config;
  config.n = 8;
  config.bandwidth = 5;
  config.seed = 17;
  config.max_faults = 1;
  config.trials = 1;
  config.threads = 2;
  const FaultBudgetReport report = sweep_fault_budget(config);

  // 3 algorithms x 3 kinds x (max_faults + 1) levels.
  EXPECT_EQ(report.points.size(), 18u);
  EXPECT_EQ(report.jobs_ok + report.jobs_failed + report.jobs_timed_out, 18u);
  for (const FaultLevelPoint& p : report.points) {
    EXPECT_EQ(p.correct + p.wrong + p.unfinished + p.errored, p.trials);
    if (p.faults == 0) {
      EXPECT_TRUE(p.all_correct()) << "fault-free level must be correct for "
                                   << fault_sweep_algorithm_name(p.algorithm);
    }
  }
  for (const auto algorithm : {FaultSweepAlgorithm::kMinIdFlood, FaultSweepAlgorithm::kBoruvka,
                               FaultSweepAlgorithm::kSketch}) {
    for (const auto kind :
         {FaultKind::kCrashStop, FaultKind::kDropBroadcast, FaultKind::kFlipBits}) {
      EXPECT_LE(report.budget(algorithm, kind), config.max_faults);
    }
  }
}

}  // namespace
}  // namespace bcclb

// Tests for graphs, union-find, components and generators.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "graph/arboricity.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/union_find.h"

namespace bcclb {
namespace {

TEST(Graph, AddAndQueryEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, RejectsSelfLoopsAndDuplicates) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 5), std::invalid_argument);
}

TEST(Graph, EdgeCanonicalOrder) {
  const Edge e(3, 1);
  EXPECT_EQ(e.u, 1u);
  EXPECT_EQ(e.v, 3u);
  EXPECT_EQ(Edge(1, 3), Edge(3, 1));
}

TEST(Graph, EqualityIgnoresInsertionOrder) {
  Graph a(3), b(3);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  b.add_edge(1, 2);
  b.add_edge(0, 1);
  EXPECT_TRUE(a == b);
}

TEST(Graph, Regularity) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_TRUE(g.is_regular(2));
  EXPECT_FALSE(g.is_regular(1));
}

TEST(UnionFind, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_EQ(uf.num_sets(), 4u);
}

TEST(UnionFind, CanonicalLabelsAreMinima) {
  UnionFind uf(6);
  uf.unite(4, 2);
  uf.unite(2, 5);
  uf.unite(0, 3);
  const auto labels = uf.canonical_labels();
  EXPECT_EQ(labels[2], 2u);
  EXPECT_EQ(labels[4], 2u);
  EXPECT_EQ(labels[5], 2u);
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[3], 0u);
  EXPECT_EQ(labels[1], 1u);
}

TEST(UnionFind, OutOfRangeThrows) {
  UnionFind uf(3);
  EXPECT_THROW(uf.find(3), std::invalid_argument);
}

TEST(Components, PathIsConnected) {
  EXPECT_TRUE(is_connected(path_graph(10)));
  EXPECT_EQ(num_components(path_graph(10)), 1u);
}

TEST(Components, IsolatedVertices) {
  Graph g(4);
  EXPECT_EQ(num_components(g), 4u);
  EXPECT_FALSE(is_connected(g));
}

TEST(Components, LabelsAreComponentMinima) {
  Graph g(6);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(0, 2);
  const auto labels = component_labels(g);
  EXPECT_EQ(labels[3], 3u);
  EXPECT_EQ(labels[5], 3u);
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[2], 0u);
  EXPECT_EQ(labels[1], 1u);
}

TEST(Components, SetsPartitionVertices) {
  Rng rng(5);
  const Graph g = random_gnp(30, 0.05, rng);
  const auto sets = component_sets(g);
  std::size_t total = 0;
  for (const auto& s : sets) total += s.size();
  EXPECT_EQ(total, 30u);
  EXPECT_EQ(sets.size(), num_components(g));
}

TEST(Components, AgreesWithUnionFind) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = random_gnp(40, 0.04, rng);
    UnionFind uf(40);
    for (const Edge& e : g.edges()) uf.unite(e.u, e.v);
    const auto bfs = component_labels(g);
    const auto dsu = uf.canonical_labels();
    for (std::size_t v = 0; v < 40; ++v) {
      EXPECT_EQ(static_cast<std::size_t>(bfs[v]), dsu[v]) << "trial " << trial << " v " << v;
    }
  }
}

TEST(Generators, RandomOneCycleIsOneCycle) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    const auto cs = random_one_cycle(12, rng);
    EXPECT_TRUE(cs.is_one_cycle());
    EXPECT_TRUE(is_connected(cs.to_graph()));
  }
}

TEST(Generators, RandomTwoCycleShape) {
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const auto cs = random_two_cycle(13, rng);
    EXPECT_TRUE(cs.is_two_cycle());
    EXPECT_GE(cs.smallest_cycle_length(), 3u);
    EXPECT_EQ(num_components(cs.to_graph()), 2u);
  }
}

TEST(Generators, RandomCycleCoverRespectsParameters) {
  Rng rng(3);
  const auto cs = random_cycle_cover(20, 4, 4, rng);
  EXPECT_EQ(cs.num_cycles(), 4u);
  EXPECT_GE(cs.smallest_cycle_length(), 4u);
}

TEST(Generators, ForestHasExpectedComponentsAndEdges) {
  Rng rng(4);
  for (std::size_t trees = 1; trees <= 4; ++trees) {
    const Graph f = random_forest(25, trees, rng);
    EXPECT_EQ(num_components(f), trees);
    EXPECT_EQ(f.num_edges(), 25u - trees);
  }
}

TEST(Generators, GnpExtremes) {
  Rng rng(6);
  EXPECT_EQ(random_gnp(10, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(random_gnp(10, 1.0, rng).num_edges(), 45u);
}

TEST(Arboricity, KnownValues) {
  Rng rng(21);
  // Cycles: n edges, any forest holds <= n-1 => arboricity exactly 2.
  const Graph cyc = random_one_cycle(12, rng).to_graph();
  EXPECT_EQ(arboricity_lower_bound(cyc), 2u);
  EXPECT_EQ(arboricity_upper_bound(cyc), 2u);
  // Forests: exactly 1.
  const Graph forest = random_forest(15, 3, rng);
  EXPECT_EQ(arboricity_upper_bound(forest), 1u);
  // Empty graph: 0.
  EXPECT_EQ(arboricity_upper_bound(Graph(5)), 0u);
  EXPECT_EQ(arboricity_lower_bound(Graph(5)), 0u);
}

TEST(Arboricity, DecompositionIsAPartitionIntoForests) {
  Rng rng(22);
  const Graph g = random_gnp(14, 0.4, rng);
  const auto forests = greedy_forest_decomposition(g);
  std::size_t total = 0;
  for (const auto& f : forests) {
    total += f.size();
    // Each class is acyclic: |edges| <= vertices - components.
    UnionFind uf(14);
    for (const Edge& e : f) EXPECT_TRUE(uf.unite(e.u, e.v));
  }
  EXPECT_EQ(total, g.num_edges());
  EXPECT_GE(forests.size(), arboricity_lower_bound(g));
}

TEST(Arboricity, UpperDominatesLower) {
  Rng rng(23);
  for (double p : {0.1, 0.3, 0.6}) {
    const Graph g = random_gnp(16, p, rng);
    EXPECT_GE(arboricity_upper_bound(g), arboricity_lower_bound(g)) << p;
  }
}

}  // namespace
}  // namespace bcclb

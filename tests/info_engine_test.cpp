// Tests for the Theorem 4.5 information-theoretic engine.
#include <gtest/gtest.h>

#include <cmath>

#include "core/info_engine.h"
#include "partition/bell.h"

namespace bcclb {
namespace {

TEST(InfoEngine, ExactProtocolTransfersFullEntropy) {
  for (std::size_t n : {3u, 5u, 7u}) {
    const InfoReport r = partition_comp_information(n);
    EXPECT_DOUBLE_EQ(r.realized_error, 0.0) << "n=" << n;
    // Deterministic, injective on PA: I(PA; Π) = H(PA) = log2 B_n.
    EXPECT_NEAR(r.mutual_information, r.h_pa, 1e-9) << "n=" << n;
    EXPECT_NEAR(r.h_pa, log2_bell(n), 1e-12);
    EXPECT_GE(r.mutual_information, r.fano_floor - 1e-9);
  }
}

TEST(InfoEngine, TruncatedProtocolLosesOnlyEpsilonEntropy) {
  const std::size_t n = 7;  // B_7 = 877
  for (double keep : {0.9, 0.75, 0.5}) {
    const InfoReport r = partition_comp_information(n, keep);
    // Error ≈ 1 - keep (the tail inputs all collapse to one transcript).
    EXPECT_NEAR(r.realized_error, 1.0 - keep, 0.05) << "keep=" << keep;
    // Theorem 4.5's bound: I >= (1-ε) H(PA) - O(1).
    EXPECT_GE(r.mutual_information, r.fano_floor - 1e-9) << "keep=" << keep;
    // And the collapse really costs information: I < H.
    EXPECT_LT(r.mutual_information, r.h_pa);
    // Quantitatively: I ≈ (1-ε) log2(B_n) + ε log2(1/ε) — kept inputs keep
    // their full index entropy; the collapsed tail contributes its own mass.
    const double eps = r.realized_error;
    EXPECT_NEAR(r.mutual_information, (1 - eps) * r.h_pa - eps * std::log2(eps), 0.5)
        << "keep=" << keep;
  }
}

TEST(InfoEngine, InformationGrowsLikeNLogN) {
  double prev = 0.0;
  for (std::size_t n = 3; n <= 9; ++n) {
    const InfoReport r = partition_comp_information(n);
    EXPECT_GT(r.mutual_information, prev);
    prev = r.mutual_information;
    // Θ(n log n): ratio to n*log2(n) in a constant band for these sizes.
    const double ratio = r.mutual_information / (n * std::log2(static_cast<double>(n)));
    EXPECT_GT(ratio, 0.3) << "n=" << n;
    EXPECT_LT(ratio, 1.2) << "n=" << n;
  }
}

TEST(InfoEngine, ImpliedRoundBoundGrows) {
  // I / (per-round bits) is the Ω(log n) story: must increase with n.
  double prev = 0.0;
  for (std::size_t n = 4; n <= 9; ++n) {
    const InfoReport r = partition_comp_information(n);
    EXPECT_GT(r.implied_bcc_rounds, prev) << "n=" << n;
    prev = r.implied_bcc_rounds;
  }
}

TEST(InfoEngine, TranscriptNeverExceedsEncodingCost) {
  const InfoReport r = partition_comp_information(6);
  // Exact protocol ships n*ceil(log2 n) = 18 bits.
  EXPECT_EQ(r.max_transcript_bits, 18u);
}

TEST(InfoEngine, RealBccRunsLeakAtLeastTheEntropy) {
  // Theorem 4.5 on a concrete algorithm: Boruvka through the Section 4.3
  // simulation is correct, so its protocol transcript must carry at least
  // H(PA) = log2(B_n) bits of information about PA.
  for (std::size_t n : {3u, 4u, 5u}) {
    const BccInfoReport r = bcc_simulation_information(n, 8);
    EXPECT_TRUE(r.all_correct) << "n=" << n;
    EXPECT_GE(r.transcript_information + 1e-9, r.h_pa) << "n=" << n;
    // And the raw budget dominates the information.
    EXPECT_GE(static_cast<double>(r.max_bits), r.transcript_information) << "n=" << n;
  }
}

TEST(InfoEngine, RejectsBadArguments) {
  EXPECT_THROW(partition_comp_information(0), std::invalid_argument);
  EXPECT_THROW(partition_comp_information(11), std::invalid_argument);
  EXPECT_THROW(partition_comp_information(5, 0.0), std::invalid_argument);
  EXPECT_THROW(partition_comp_information(5, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace bcclb

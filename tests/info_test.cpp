// Tests for distributions, entropy and mutual information.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "info/entropy.h"

namespace bcclb {
namespace {

TEST(Distribution, MassAccumulates) {
  Distribution d;
  d.add("a", 1.0);
  d.add("a", 2.0);
  d.add("b", 1.0);
  EXPECT_DOUBLE_EQ(d.total_mass(), 4.0);
  EXPECT_EQ(d.support_size(), 2u);
  EXPECT_THROW(d.add("c", -1.0), std::invalid_argument);
}

TEST(Entropy, UniformIsLogSupport) {
  Distribution d;
  for (int i = 0; i < 8; ++i) d.add("x" + std::to_string(i), 1.0);
  EXPECT_NEAR(entropy(d), 3.0, 1e-12);
}

TEST(Entropy, PointMassIsZero) {
  Distribution d;
  d.add("only", 5.0);
  EXPECT_DOUBLE_EQ(entropy(d), 0.0);
}

TEST(Entropy, UnnormalizedMassesAreNormalized) {
  Distribution a, b;
  a.add("x", 1.0);
  a.add("y", 1.0);
  b.add("x", 10.0);
  b.add("y", 10.0);
  EXPECT_NEAR(entropy(a), entropy(b), 1e-12);
}

TEST(Entropy, BinaryEntropyFormula) {
  for (double p : {0.1, 0.25, 0.5, 0.9}) {
    Distribution d;
    d.add("one", p);
    d.add("zero", 1 - p);
    const double expect = -p * std::log2(p) - (1 - p) * std::log2(1 - p);
    EXPECT_NEAR(entropy(d), expect, 1e-12);
  }
}

TEST(Joint, MarginalsAreConsistent) {
  JointDistribution j;
  j.add("a", "1", 0.25);
  j.add("a", "2", 0.25);
  j.add("b", "1", 0.5);
  EXPECT_DOUBLE_EQ(j.total_mass(), 1.0);
  EXPECT_EQ(j.marginal_x().support_size(), 2u);
  EXPECT_EQ(j.marginal_y().support_size(), 2u);
  EXPECT_NEAR(j.marginal_x().masses().at("a"), 0.5, 1e-12);
}

TEST(MutualInformation, IndependentIsZero) {
  JointDistribution j;
  for (const char* x : {"a", "b"}) {
    for (const char* y : {"1", "2", "3"}) j.add(x, y, 1.0);
  }
  EXPECT_NEAR(mutual_information(j), 0.0, 1e-12);
}

TEST(MutualInformation, DeterministicFunctionGivesFullEntropy) {
  // Y = f(X) injective: I(X; Y) = H(X).
  JointDistribution j;
  for (int i = 0; i < 16; ++i) {
    j.add("x" + std::to_string(i), "y" + std::to_string(i), 1.0);
  }
  EXPECT_NEAR(mutual_information(j), 4.0, 1e-12);
}

TEST(MutualInformation, ManyToOneLosesInformation) {
  // Y = X mod 2 with X uniform on 4 values: I = 1 bit.
  JointDistribution j;
  for (int i = 0; i < 4; ++i) {
    j.add("x" + std::to_string(i), i % 2 ? "odd" : "even", 1.0);
  }
  EXPECT_NEAR(mutual_information(j), 1.0, 1e-12);
}

TEST(MutualInformation, ChainIdentity) {
  // H(X,Y) = H(Y) + H(X|Y); I = H(X) - H(X|Y).
  Rng rng(31);
  JointDistribution j;
  for (int i = 0; i < 5; ++i) {
    for (int k = 0; k < 4; ++k) {
      j.add("x" + std::to_string(i), "y" + std::to_string(k), rng.next_double() + 0.01);
    }
  }
  const double hx = entropy(j.marginal_x());
  const double hy = entropy(j.marginal_y());
  const double hxy = joint_entropy(j);
  EXPECT_NEAR(conditional_entropy_x_given_y(j), hxy - hy, 1e-9);
  EXPECT_NEAR(mutual_information(j), hx + hy - hxy, 1e-9);
  // I >= 0 and I <= min(H(X), H(Y)).
  EXPECT_GE(mutual_information(j), 0.0);
  EXPECT_LE(mutual_information(j), std::min(hx, hy) + 1e-9);
}

TEST(MutualInformation, SymmetricInArguments) {
  Rng rng(7);
  JointDistribution j, swapped;
  for (int i = 0; i < 4; ++i) {
    for (int k = 0; k < 3; ++k) {
      const double m = rng.next_double() + 0.01;
      j.add("x" + std::to_string(i), "y" + std::to_string(k), m);
      swapped.add("y" + std::to_string(k), "x" + std::to_string(i), m);
    }
  }
  EXPECT_NEAR(mutual_information(j), mutual_information(swapped), 1e-9);
}

}  // namespace
}  // namespace bcclb

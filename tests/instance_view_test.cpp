// InstanceView / ImplicitInstance: the Feistel permutation primitive, the
// implicit wiring and graph families, materialization equivalence, the O(1)
// spec digest, and the view seam over both representations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "bcc/instance.h"
#include "bcc/instance_view.h"
#include "common/errors.h"
#include "common/feistel.h"

namespace bcclb {
namespace {

// ---- FeistelPermutation -----------------------------------------------------

TEST(Feistel, BijectionAndInverseAtAwkwardSizes) {
  // Powers of four are the friendly case (no cycle-walking); everything else
  // exercises the walk. Cover both plus the degenerate sizes.
  for (const std::uint64_t size :
       {1ull, 2ull, 3ull, 4ull, 5ull, 7ull, 11ull, 16ull, 17ull, 31ull, 48ull, 50ull, 63ull,
        64ull, 65ull, 100ull, 1000ull, 4096ull}) {
    const FeistelPermutation pi(2019, size);
    std::vector<bool> hit(size, false);
    for (std::uint64_t x = 0; x < size; ++x) {
      const std::uint64_t y = pi.forward(x);
      ASSERT_LT(y, size) << "size " << size;
      ASSERT_FALSE(hit[y]) << "size " << size << ": collision at " << y;
      hit[y] = true;
      ASSERT_EQ(pi.inverse(y), x) << "size " << size;
    }
  }
}

TEST(Feistel, DeterministicPerSeedAndDistinctAcrossSeeds) {
  const FeistelPermutation a(7, 1000), b(7, 1000), c(8, 1000);
  bool differs = false;
  for (std::uint64_t x = 0; x < 1000; ++x) {
    EXPECT_EQ(a.forward(x), b.forward(x));
    differs = differs || a.forward(x) != c.forward(x);
  }
  EXPECT_TRUE(differs) << "seeds 7 and 8 produced the same permutation of [1000]";
}

TEST(Feistel, RejectsOutOfRangeQueries) {
  const FeistelPermutation pi(1, 10);
  EXPECT_THROW(pi.forward(10), std::invalid_argument);
  EXPECT_THROW(pi.inverse(10), std::invalid_argument);
}

// ---- family parsing ---------------------------------------------------------

TEST(ImplicitFamily, NameRoundTrip) {
  for (const ImplicitFamily family :
       {ImplicitFamily::kOneCycle, ImplicitFamily::kTwoCycle, ImplicitFamily::kMultiCycle,
        ImplicitFamily::kRandomRegular}) {
    const auto parsed = parse_implicit_family(implicit_family_name(family));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, family);
  }
  EXPECT_FALSE(parse_implicit_family("three-cycle").has_value());
  EXPECT_FALSE(parse_implicit_family("").has_value());
  EXPECT_FALSE(parse_implicit_family("One-Cycle").has_value());
}

// ---- wiring -----------------------------------------------------------------

std::vector<ImplicitSpec> small_specs() {
  std::vector<ImplicitSpec> specs;
  for (const std::uint64_t n : {6ull, 9ull, 12ull}) {
    for (const std::uint64_t seed : {1ull, 2019ull}) {
      for (const KnowledgeMode mode : {KnowledgeMode::kKT0, KnowledgeMode::kKT1}) {
        for (const ImplicitFamily family :
             {ImplicitFamily::kOneCycle, ImplicitFamily::kTwoCycle, ImplicitFamily::kMultiCycle,
              ImplicitFamily::kRandomRegular}) {
          // The default 3-cycle multi-cycle split needs 3 vertices per cycle.
          if (family == ImplicitFamily::kMultiCycle && n < 9) continue;
          ImplicitSpec spec;
          spec.n = n;
          spec.family = family;
          spec.seed = seed;
          spec.mode = mode;
          specs.push_back(spec);
        }
      }
    }
  }
  return specs;
}

TEST(ImplicitInstance, WiringRowsAreBijectionsWithExactInverses) {
  for (const ImplicitSpec& spec : small_specs()) {
    const ImplicitInstance inst(spec);
    const std::size_t n = inst.num_vertices();
    for (VertexId v = 0; v < n; ++v) {
      std::set<VertexId> seen;
      for (Port p = 0; p + 1 < n; ++p) {
        const VertexId u = inst.peer(v, p);
        ASSERT_LT(u, n);
        ASSERT_NE(u, v) << "self-loop port";
        ASSERT_TRUE(seen.insert(u).second) << "port table row " << v << " repeats peer " << u;
        ASSERT_EQ(inst.port_at(v, u), p);
      }
    }
  }
}

TEST(ImplicitInstance, Kt1WiringIsCanonical) {
  ImplicitSpec spec;
  spec.n = 10;
  spec.mode = KnowledgeMode::kKT1;
  const ImplicitInstance inst(spec);
  for (VertexId v = 0; v < 10; ++v) {
    for (Port p = 0; p + 1 < 10; ++p) {
      EXPECT_EQ(inst.peer(v, p), p < v ? p : p + 1);
    }
  }
}

// ---- graph families ---------------------------------------------------------

TEST(ImplicitInstance, NeighborsAreSortedSymmetricAndSelfFree) {
  for (const ImplicitSpec& spec : small_specs()) {
    const ImplicitInstance inst(spec);
    const std::size_t n = inst.num_vertices();
    std::vector<std::vector<VertexId>> adj(n);
    std::vector<VertexId> nbrs;
    for (VertexId v = 0; v < n; ++v) {
      inst.neighbors(v, nbrs);
      ASSERT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
      ASSERT_EQ(std::adjacent_find(nbrs.begin(), nbrs.end()), nbrs.end()) << "duplicate";
      for (const VertexId u : nbrs) {
        ASSERT_LT(u, n);
        ASSERT_NE(u, v);
      }
      adj[v] = nbrs;
    }
    for (VertexId v = 0; v < n; ++v) {
      for (const VertexId u : adj[v]) {
        ASSERT_TRUE(std::binary_search(adj[u].begin(), adj[u].end(), v))
            << implicit_family_name(spec.family) << " n=" << spec.n << ": edge " << v << "-"
            << u << " not symmetric";
      }
    }
  }
}

TEST(ImplicitInstance, CycleFamiliesAreTwoRegularWithTrueComponentCounts) {
  for (const ImplicitSpec& spec : small_specs()) {
    if (spec.family == ImplicitFamily::kRandomRegular) continue;
    const ImplicitInstance inst(spec);
    const std::size_t n = inst.num_vertices();
    std::vector<VertexId> nbrs;
    for (VertexId v = 0; v < n; ++v) {
      inst.neighbors(v, nbrs);
      ASSERT_EQ(nbrs.size(), 2u) << implicit_family_name(spec.family) << " n=" << n;
    }
    // Count components by walking the neighbor structure directly.
    std::vector<bool> visited(n, false);
    std::uint64_t components = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (visited[v]) continue;
      ++components;
      std::vector<VertexId> stack{v};
      visited[v] = true;
      while (!stack.empty()) {
        const VertexId cur = stack.back();
        stack.pop_back();
        inst.neighbors(cur, nbrs);
        for (const VertexId u : nbrs) {
          if (!visited[u]) {
            visited[u] = true;
            stack.push_back(u);
          }
        }
      }
    }
    EXPECT_EQ(components, inst.num_components())
        << implicit_family_name(spec.family) << " n=" << n << " seed=" << spec.seed;
  }
}

TEST(ImplicitInstance, RandomRegularHasNoClosedFormComponentCount) {
  ImplicitSpec spec;
  spec.n = 12;
  spec.family = ImplicitFamily::kRandomRegular;
  EXPECT_THROW(ImplicitInstance(spec).num_components(), BcclbError);
}

TEST(ImplicitInstance, ConstructorValidatesFamilyConstraints) {
  ImplicitSpec spec;
  spec.n = 2;
  EXPECT_THROW(ImplicitInstance{spec}, std::invalid_argument);  // n < 3
  spec.n = 5;
  spec.family = ImplicitFamily::kTwoCycle;
  EXPECT_THROW(ImplicitInstance{spec}, std::invalid_argument);  // halves < 3
  spec.n = 8;
  spec.family = ImplicitFamily::kMultiCycle;
  spec.cycles = 3;
  EXPECT_THROW(ImplicitInstance{spec}, std::invalid_argument);  // 8/3 < 3
  spec.n = 9;
  EXPECT_NO_THROW(ImplicitInstance{spec});
}

// ---- materialization --------------------------------------------------------

TEST(ImplicitInstance, MaterializeReproducesEveryQuery) {
  for (const ImplicitSpec& spec : small_specs()) {
    const ImplicitInstance inst(spec);
    const BccInstance mat = inst.materialize();
    const std::size_t n = inst.num_vertices();
    ASSERT_EQ(mat.num_vertices(), n);
    ASSERT_EQ(mat.mode(), spec.mode);
    std::vector<VertexId> nbrs;
    for (VertexId v = 0; v < n; ++v) {
      EXPECT_EQ(mat.id_of(v), inst.id_of(v));
      for (Port p = 0; p + 1 < n; ++p) {
        ASSERT_EQ(mat.wiring().peer(v, p), inst.peer(v, p)) << "v=" << v << " p=" << p;
      }
      inst.neighbors(v, nbrs);
      std::vector<VertexId> expected = mat.input().neighbors(v);
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(nbrs, expected) << "v=" << v;
      ASSERT_EQ(inst.input_ports(v), mat.input_ports(v)) << "v=" << v;
    }
  }
}

TEST(ImplicitInstance, MaterializeRefusesAboveCeiling) {
  ImplicitSpec spec;
  spec.n = kMaxMaterializeN + 1;
  const ImplicitInstance inst(spec);
  EXPECT_THROW(inst.materialize(), RangeViolationError);
  EXPECT_THROW(InstanceView(spec).to_explicit(), RangeViolationError);
}

// ---- digests ----------------------------------------------------------------

TEST(ImplicitInstance, DigestIsStableAndSeparatesSpecs) {
  std::set<std::uint64_t> digests;
  for (const ImplicitSpec& spec : small_specs()) {
    const std::uint64_t d = ImplicitInstance(spec).digest();
    EXPECT_EQ(d, ImplicitInstance(spec).digest());
    EXPECT_TRUE(digests.insert(d).second) << "digest collision across distinct specs";
  }
  // The digest is the spec's fingerprint, not the wiring's: a view over the
  // implicit form and one over its materialization answer differently (the
  // explicit path hashes actual tables).
  ImplicitSpec spec;
  spec.n = 12;
  const InstanceView implicit_view(spec);
  EXPECT_EQ(implicit_view.digest(), ImplicitInstance(spec).digest());
}

// ---- the view seam ----------------------------------------------------------

TEST(InstanceView, ExplicitAndImplicitViewsAgreeOnEveryQuery) {
  for (const ImplicitSpec& spec : small_specs()) {
    const InstanceView implicit_view(spec);
    const BccInstance mat = implicit_view.to_explicit();
    const InstanceView explicit_view(&mat);
    ASSERT_TRUE(implicit_view.is_implicit());
    ASSERT_FALSE(explicit_view.is_implicit());
    ASSERT_EQ(explicit_view.num_vertices(), implicit_view.num_vertices());
    ASSERT_EQ(explicit_view.mode(), implicit_view.mode());
    const std::size_t n = implicit_view.num_vertices();
    std::vector<VertexId> a, b;
    for (VertexId v = 0; v < n; ++v) {
      ASSERT_EQ(explicit_view.id_of(v), implicit_view.id_of(v));
      for (Port p = 0; p + 1 < n; ++p) {
        ASSERT_EQ(explicit_view.peer(v, p), implicit_view.peer(v, p));
      }
      explicit_view.neighbors(v, a);
      implicit_view.neighbors(v, b);
      ASSERT_EQ(a, b);
      ASSERT_EQ(explicit_view.input_ports(v), implicit_view.input_ports(v));
    }
  }
}

TEST(InstanceView, AccessorsExposeTheWrappedRepresentation) {
  ImplicitSpec spec;
  spec.n = 8;
  const InstanceView implicit_view(spec);
  EXPECT_EQ(implicit_view.explicit_instance(), nullptr);
  ASSERT_NE(implicit_view.implicit_instance(), nullptr);
  EXPECT_EQ(implicit_view.implicit_instance()->spec(), spec);

  const BccInstance mat = implicit_view.to_explicit();
  const InstanceView explicit_view(&mat);
  EXPECT_EQ(explicit_view.explicit_instance(), &mat);
  EXPECT_EQ(explicit_view.implicit_instance(), nullptr);
  EXPECT_EQ(explicit_view.digest(), mat.digest());
}

}  // namespace
}  // namespace bcclb

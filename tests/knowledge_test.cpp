// Tests for the KT-0 -> KT-1 bootstrap combinator (Section 1.1's "b = Ω(log n)
// erases the knowledge distinction" remark).
#include <gtest/gtest.h>

#include "bcc/algorithms/boruvka.h"
#include "bcc/algorithms/kt0_bootstrap.h"
#include "bcc/algorithms/sketch_connectivity.h"
#include "common/mathutil.h"
#include "common/random.h"
#include "graph/components.h"
#include "graph/generators.h"

namespace bcclb {
namespace {

TEST(Bootstrap, RoundsFormula) {
  EXPECT_EQ(Kt0BootstrapAlgorithm::bootstrap_rounds(16, 1), 4u);
  EXPECT_EQ(Kt0BootstrapAlgorithm::bootstrap_rounds(16, 4), 1u);
  EXPECT_EQ(Kt0BootstrapAlgorithm::bootstrap_rounds(17, 1), 5u);
  EXPECT_EQ(Kt0BootstrapAlgorithm::bootstrap_rounds(1024, 10), 1u);
}

TEST(Bootstrap, BoruvkaRunsInKt0ViaBootstrap) {
  Rng rng(1);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = random_gnp(12, 0.2, rng);
    // Random KT-0 wiring: the inner KT-1 algorithm cannot rely on canonical
    // port order; only the announced IDs.
    const BccInstance inst = BccInstance::random_kt0(g, rng);
    const unsigned b = 5;
    BccSimulator sim(inst, b);
    const RunResult r =
        sim.run(kt0_bootstrap(boruvka_factory()),
                Kt0BootstrapAlgorithm::bootstrap_rounds(12, b) +
                    BoruvkaAlgorithm::max_rounds(12, b));
    EXPECT_TRUE(r.all_finished);
    EXPECT_EQ(r.decision, is_connected(g)) << "trial " << trial;
    const auto labels = component_labels(g);
    for (VertexId v = 0; v < 12; ++v) {
      ASSERT_TRUE(r.labels[v].has_value());
      EXPECT_EQ(*r.labels[v], labels[v]);
    }
  }
}

TEST(Bootstrap, CostMatchesAnnouncePlusInner) {
  Rng rng(2);
  const Graph g = random_one_cycle(16, rng).to_graph();
  const unsigned b = 5;  // ceil_log2(16) = 4 < b: one announcement round
  const BccInstance kt0 = BccInstance::random_kt0(g, rng);
  const BccInstance kt1 = BccInstance::kt1(g);
  BccSimulator sim0(kt0, b), sim1(kt1, b);
  const RunResult with_bootstrap =
      sim0.run(kt0_bootstrap(boruvka_factory()), 100);
  const RunResult native = sim1.run(boruvka_factory(), 100);
  EXPECT_EQ(with_bootstrap.rounds_executed,
            native.rounds_executed + Kt0BootstrapAlgorithm::bootstrap_rounds(16, b));
  EXPECT_EQ(with_bootstrap.decision, native.decision);
}

TEST(Bootstrap, NarrowBandwidthPaysLogN) {
  // At b = 1 the bootstrap costs ceil_log2(n) extra rounds — the knowledge
  // gap the paper's KT-0/KT-1 split is about.
  Rng rng(3);
  const std::size_t n = 32;
  const Graph g = random_one_cycle(n, rng).to_graph();
  const BccInstance kt0 = BccInstance::random_kt0(g, rng);
  BccSimulator sim(kt0, 1);
  const RunResult r = sim.run(kt0_bootstrap(boruvka_factory()), 500);
  EXPECT_TRUE(r.decision);
  EXPECT_GE(r.rounds_executed, ceil_log2(n));
}

TEST(Bootstrap, SynthesizedViewMatchesNativeKt1) {
  // Decision/labels equal on many random wirings: the synthesized KT-1 view
  // is faithful regardless of port permutations.
  Rng rng(4);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = random_gnp(10, 0.25, rng);
    const BccInstance kt0 = BccInstance::random_kt0(g, rng);
    const BccInstance kt1 = BccInstance::kt1(g);
    BccSimulator sim0(kt0, 4), sim1(kt1, 4);
    const RunResult a = sim0.run(kt0_bootstrap(boruvka_factory()), 300);
    const RunResult b = sim1.run(boruvka_factory(), 300);
    EXPECT_EQ(a.decision, b.decision);
    for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(a.labels[v], b.labels[v]);
  }
}

TEST(Bootstrap, RequiresSmallIds) {
  Graph g(4);
  g.add_edge(0, 1);
  const BccInstance inst(Wiring::kt1(4), g, KnowledgeMode::kKT0, {0, 1, 2, 100});
  BccSimulator sim(inst, 4);
  EXPECT_THROW(sim.run(kt0_bootstrap(boruvka_factory()), 10), std::invalid_argument);
}

TEST(Bootstrap, WorksAtBandwidthOne) {
  // The extreme of the paper's remark: b = 1 pays the full ceil(log2 n)
  // announcement cost but the synthesized KT-1 view is still exact.
  Rng rng(5);
  const Graph g = random_two_cycle(10, rng).to_graph();
  BccSimulator sim(BccInstance::random_kt0(g, rng), 1);
  const RunResult r = sim.run(kt0_bootstrap(boruvka_factory()), 1000);
  EXPECT_TRUE(r.all_finished);
  EXPECT_FALSE(r.decision);
  const auto labels = component_labels(g);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(*r.labels[v], labels[v]);
}

TEST(Bootstrap, ComposesWithSketches) {
  // Bootstrap + public coins + sketch connectivity: KT-0 randomized
  // connectivity end to end.
  Rng rng(6);
  const Graph g = random_one_cycle(10, rng).to_graph();
  const PublicCoins coins(77, 4096);
  BccSimulator sim(BccInstance::random_kt0(g, rng), 16, &coins);
  const RunResult r = sim.run(
      kt0_bootstrap(sketch_connectivity_factory()),
      Kt0BootstrapAlgorithm::bootstrap_rounds(10, 16) +
          SketchConnectivityAlgorithm::max_rounds(10, 16));
  EXPECT_TRUE(r.all_finished);
  EXPECT_TRUE(r.decision);
}

}  // namespace
}  // namespace bcclb

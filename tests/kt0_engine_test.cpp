// Tests for the KT-0 lower-bound engine (Theorems 3.5 and 3.1).
#include <gtest/gtest.h>

#include "bcc/algorithms/two_cycle_adversaries.h"
#include "common/random.h"
#include "core/kt0_engine.h"
#include "graph/generators.h"

namespace bcclb {
namespace {

struct StarCase {
  AdversaryKind kind;
  unsigned t;
};

class StarExperiment : public ::testing::TestWithParam<StarCase> {};

TEST_P(StarExperiment, PigeonholeAndIndistinguishabilityHold) {
  const auto [kind, t] = GetParam();
  const PublicCoins coins(17, 1024);
  const auto factory = two_cycle_adversary_factory(kind, t, always_yes_rule());
  const auto report = star_error_experiment(24, t, factory, &coins);

  EXPECT_EQ(report.independent_set_size, 8u);  // floor(24/3)
  // Theorem 3.5's pigeonhole: some class has >= |S| / 3^(2t) edges.
  EXPECT_GE(static_cast<double>(report.largest_class_size), report.pigeonhole_floor - 1e-9);
  EXPECT_GE(report.largest_class_size, 1u);
  // Lemma 3.4: every same-class crossing is state-indistinguishable.
  EXPECT_EQ(report.crossings_verified, report.crossings_checked)
      << adversary_kind_name(kind) << " t=" << t;
  if (report.largest_class_size >= 2) {
    EXPECT_GT(report.crossings_checked, 0u);
    EXPECT_GT(report.forced_error, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndRounds, StarExperiment,
    ::testing::Values(StarCase{AdversaryKind::kSilent, 1}, StarCase{AdversaryKind::kSilent, 3},
                      StarCase{AdversaryKind::kIdBits, 1}, StarCase{AdversaryKind::kIdBits, 2},
                      StarCase{AdversaryKind::kHashedId, 2},
                      StarCase{AdversaryKind::kCoinXorId, 2},
                      StarCase{AdversaryKind::kPortParity, 2},
                      StarCase{AdversaryKind::kEcho, 2}));

TEST(StarExperiment, MeasuredErrorDominatesForcedError) {
  // The forced error certifies a floor for ANY algorithm with these
  // transcripts; the concrete run must sit at or above it.
  const PublicCoins coins(19, 1024);
  for (const AdversaryKind kind :
       {AdversaryKind::kSilent, AdversaryKind::kIdBits, AdversaryKind::kEcho}) {
    for (unsigned t : {1u, 2u}) {
      const auto factory = two_cycle_adversary_factory(kind, t, always_yes_rule());
      const auto rep = star_error_experiment(24, t, factory, &coins);
      EXPECT_GE(rep.measured_error + 1e-9, rep.forced_error)
          << adversary_kind_name(kind) << " t=" << t;
    }
  }
}

TEST(StarExperiment, SilentAlgorithmKeepsWholeClass) {
  // Silence means every edge carries the same label: |S'| = |S| and the
  // forced error is exactly 1/2 of the NO mass... i.e. C(s,2)/(2 C(s,2)) = 0.5.
  const auto report = star_error_experiment(
      30, 5, two_cycle_adversary_factory(AdversaryKind::kSilent, 5, always_yes_rule()));
  EXPECT_EQ(report.largest_class_size, report.independent_set_size);
  EXPECT_DOUBLE_EQ(report.forced_error, 0.5);
}

TEST(StarExperiment, ErrorFloorDecaysNoFasterThanTheory) {
  // For each t the forced error should dominate the 3^{-4t}/2 reference.
  for (unsigned t = 1; t <= 3; ++t) {
    const auto report = star_error_experiment(
        27, t, two_cycle_adversary_factory(AdversaryKind::kHashedId, t, always_yes_rule()));
    if (report.largest_class_size >= 2) {
      EXPECT_GE(report.forced_error, report.theory_floor * 0.9) << "t=" << t;
    }
  }
}

TEST(MatchingExperiment, SilentAlgorithmAtSmallN) {
  const auto factory =
      two_cycle_adversary_factory(AdversaryKind::kSilent, 2, always_yes_rule());
  const auto report = kt0_matching_experiment(7, 2, factory);
  EXPECT_EQ(report.v1, 360u);   // 6!/2
  EXPECT_EQ(report.v2, 105u);   // C(6,2)*1*(3!)/2 + ... = two-cycle covers of 7
  // All edges share the silent label, so the graph is the round-0 graph and
  // the smaller side saturates.
  EXPECT_EQ(report.best_label, "____");
  EXPECT_EQ(report.max_matching, 105u);
  EXPECT_GT(report.matching_error_bound, 0.0);
  // The always-YES silent algorithm errs on every two-cycle instance: its
  // measured error (0.5) must dominate the matching bound.
  EXPECT_DOUBLE_EQ(report.measured_error, 0.5);
  EXPECT_LE(report.matching_error_bound, report.measured_error + 1e-12);
}

TEST(MatchingExperiment, MatchingBoundIsAlwaysALowerBoundOnError) {
  // The matching bound certifies error for ANY algorithm with these
  // transcripts — in particular the concrete one we measured.
  const PublicCoins coins(23, 1024);
  for (AdversaryKind kind :
       {AdversaryKind::kIdBits, AdversaryKind::kHashedId, AdversaryKind::kEcho}) {
    for (unsigned t = 1; t <= 2; ++t) {
      const auto factory = two_cycle_adversary_factory(kind, t, always_yes_rule());
      const auto report = kt0_matching_experiment(7, t, factory, &coins);
      EXPECT_LE(report.matching_error_bound, report.measured_error + 1e-9)
          << adversary_kind_name(kind) << " t=" << t;
    }
  }
}

TEST(MatchingExperiment, ParityRuleAlsoObeysTheBound) {
  // A rule that answers NO sometimes still cannot beat indistinguishability.
  const auto factory = two_cycle_adversary_factory(AdversaryKind::kIdBits, 2, parity_rule());
  const auto report = kt0_matching_experiment(7, 2, factory);
  EXPECT_LE(report.matching_error_bound, report.measured_error + 1e-9);
}

TEST(MatchingExperiment, SizeRatioMatchesLemma39Prediction) {
  const auto factory =
      two_cycle_adversary_factory(AdversaryKind::kSilent, 1, always_yes_rule());
  const auto report = kt0_matching_experiment(8, 1, factory);
  EXPECT_GT(report.size_ratio / report.harmonic_prediction, 0.4);
  EXPECT_LT(report.size_ratio / report.harmonic_prediction, 2.5);
}

TEST(SampledError, LargeNStaysNearHalfForShallowAlgorithms) {
  // Beyond exhaustive sizes: t = o(log n) adversaries keep distributional
  // error near 1/2 (they err on essentially all two-cycle inputs).
  const PublicCoins coins(3, 4096);
  for (const AdversaryKind kind : {AdversaryKind::kSilent, AdversaryKind::kHashedId}) {
    const auto factory = two_cycle_adversary_factory(kind, 2, always_yes_rule());
    const auto rep = kt0_sampled_error(48, 2, factory, 60, 7, &coins);
    EXPECT_DOUBLE_EQ(rep.yes_error, 0.0) << adversary_kind_name(kind);
    EXPECT_DOUBLE_EQ(rep.no_error, 1.0) << adversary_kind_name(kind);
    EXPECT_DOUBLE_EQ(rep.total_error, 0.5) << adversary_kind_name(kind);
    // Pigeonhole mass: largest label class >= n / 3^(2t).
    EXPECT_GE(rep.mean_largest_class, 48.0 / 81.0) << adversary_kind_name(kind);
  }
}

TEST(SampledError, CountsAreConsistent) {
  const auto factory =
      two_cycle_adversary_factory(AdversaryKind::kIdBits, 1, parity_rule());
  const auto rep = kt0_sampled_error(24, 1, factory, 40, 11);
  EXPECT_EQ(rep.samples, 40u);
  EXPECT_GE(rep.total_error, 0.0);
  EXPECT_LE(rep.total_error, 1.0);
  EXPECT_NEAR(rep.total_error, 0.5 * (rep.yes_error + rep.no_error), 1e-12);
}

TEST(AlgorithmActiveEdges, SilentMeansAllActive) {
  const auto factory =
      two_cycle_adversary_factory(AdversaryKind::kSilent, 2, always_yes_rule());
  const auto active = algorithm_active_edges(2, factory, "__", "__");
  Rng rng(3);
  const auto cs = random_one_cycle(9, rng);
  EXPECT_EQ(active(cs).size(), 9u);
  // Wrong label: nothing active.
  const auto none = algorithm_active_edges(2, factory, "00", "00");
  EXPECT_TRUE(none(cs).empty());
}

}  // namespace
}  // namespace bcclb

// Tests for the Section 4.3 two-party simulation of KT-1 BCC algorithms.
#include <gtest/gtest.h>

#include "bcc/algorithms/boruvka.h"
#include "bcc/algorithms/min_id_flood.h"
#include "common/random.h"
#include "core/kt1_engine.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "partition/enumeration.h"
#include "partition/pair_partition.h"
#include "partition/sampling.h"

namespace bcclb {
namespace {

TEST(Kt1Simulation, MatchesDirectSimulatorRun) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_gnp(10, 0.2, rng);
    const BccInstance inst = BccInstance::kt1(g);
    const unsigned b = 8;

    BccSimulator direct(inst, b);
    const RunResult want = direct.run(boruvka_factory(), BoruvkaAlgorithm::max_rounds(10, b));

    const auto sim = simulate_kt1_two_party(
        inst, [](VertexId v) { return v < 5; }, boruvka_factory(), b,
        BoruvkaAlgorithm::max_rounds(10, b) + 2);
    EXPECT_EQ(sim.decision, want.decision) << "trial " << trial;
    for (VertexId v = 0; v < 10; ++v) {
      EXPECT_EQ(sim.labels[v], want.labels[v]) << "trial " << trial << " v " << v;
    }
  }
}

TEST(Kt1Simulation, CommunicationIsLinearPerRound) {
  Rng rng(2);
  const Graph g = random_one_cycle(12, rng).to_graph();
  const BccInstance inst = BccInstance::kt1(g);
  const unsigned b = 8;
  const auto sim = simulate_kt1_two_party(
      inst, [](VertexId v) { return v % 2 == 0; }, boruvka_factory(), b, 200);
  // Each party ships 6 vertices * (b+1) bits + 1 flag per round.
  EXPECT_EQ(sim.bits_per_round, 6u * 15u + 1u);  // 6 vertices * (7 + b) bits + flag
  EXPECT_EQ(sim.comm.total_bits(), 2u * sim.bits_per_round * sim.comm.rounds);
}

TEST(Kt1Simulation, RequiresKt1Mode) {
  Rng rng(3);
  const Graph g = random_one_cycle(8, rng).to_graph();
  const BccInstance inst = BccInstance::random_kt0(g, rng);
  EXPECT_THROW(simulate_kt1_two_party(
                   inst, [](VertexId v) { return v < 4; }, boruvka_factory(), 8, 100),
               std::invalid_argument);
}

TEST(Kt1Simulation, BothPartiesMustHostSomething) {
  Rng rng(4);
  const Graph g = random_one_cycle(8, rng).to_graph();
  const BccInstance inst = BccInstance::kt1(g);
  EXPECT_THROW(simulate_kt1_two_party(
                   inst, [](VertexId) { return true; }, boruvka_factory(), 8, 100),
               std::invalid_argument);
}

TEST(PartitionViaBcc, ExhaustiveSmallGroundWithBoruvka) {
  const auto parts = all_partitions(3);
  for (const auto& pa : parts) {
    for (const auto& pb : parts) {
      const auto out = solve_partition_via_bcc(pa, pb, boruvka_factory(), 8, 200);
      EXPECT_EQ(out.sim.decision, out.expected_join_is_one)
          << pa.to_string() << " vs " << pb.to_string();
      ASSERT_TRUE(out.recovered_join.has_value());
      EXPECT_EQ(*out.recovered_join, out.expected_join);
    }
  }
}

TEST(PartitionViaBcc, RandomSweepWithFlood) {
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    const SetPartition pa = uniform_partition(6, rng);
    const SetPartition pb = uniform_partition(6, rng);
    // 24 vertices: flooding needs 24 rounds and IDs fit 5 bits.
    const auto out = solve_partition_via_bcc(pa, pb, min_id_flood_factory(), 8, 40);
    EXPECT_EQ(out.sim.decision, out.expected_join_is_one);
    ASSERT_TRUE(out.recovered_join.has_value());
    EXPECT_EQ(*out.recovered_join, out.expected_join);
  }
}

TEST(TwoPartitionViaBcc, ExhaustiveMatchingsOnFourElements) {
  const auto matchings = all_perfect_matchings(4);
  ASSERT_EQ(matchings.size(), 3u);
  for (const auto& pa : matchings) {
    for (const auto& pb : matchings) {
      const auto out = solve_two_partition_via_bcc(pa, pb, boruvka_factory(), 8, 200);
      EXPECT_EQ(out.sim.decision, out.expected_join_is_one);
      ASSERT_TRUE(out.recovered_join.has_value());
      EXPECT_EQ(*out.recovered_join, out.expected_join);
    }
  }
}

TEST(TwoPartitionViaBcc, RandomMatchingsSweep) {
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    const SetPartition pa = random_perfect_matching(8, rng);
    const SetPartition pb = random_perfect_matching(8, rng);
    const auto out = solve_two_partition_via_bcc(pa, pb, boruvka_factory(), 8, 200);
    EXPECT_EQ(out.sim.decision, out.expected_join_is_one) << "trial " << trial;
    EXPECT_EQ(*out.recovered_join, out.expected_join);
  }
}

TEST(PartitionViaBcc, RoundsTimesBitsBeatTheLowerBoundStory) {
  // The Theorem 4.4 accounting: a t-round algorithm yields a protocol with
  // O(t * n) bits. Verify total bits == rounds * 2 * bits_per_round and that
  // Boruvka's t stays logarithmic, so the measured protocol is Θ(n log n) —
  // consistent with (not below) the Ω(n log n) communication bound.
  Rng rng(7);
  const SetPartition pa = uniform_partition(10, rng);
  const SetPartition pb = uniform_partition(10, rng);
  const auto out = solve_partition_via_bcc(pa, pb, boruvka_factory(), 8, 400);
  EXPECT_EQ(out.sim.comm.total_bits(),
            2 * out.sim.bits_per_round * static_cast<std::uint64_t>(out.sim.comm.rounds));
  EXPECT_LE(out.sim.bcc_rounds, 20u);  // ~log2(40) phases
}

}  // namespace
}  // namespace bcclb

// Tests for GF(2) and mod-p matrix ranks.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "linalg/gf2_matrix.h"
#include "linalg/modp_matrix.h"
#include "partition/join_matrix.h"

namespace bcclb {
namespace {

BoolMatrix bool_matrix(std::size_t rows, std::size_t cols,
                       std::initializer_list<std::uint8_t> entries) {
  BoolMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.data.assign(entries);
  return m;
}

TEST(Gf2Matrix, IdentityFullRank) {
  Gf2Matrix m(5, 5);
  for (std::size_t i = 0; i < 5; ++i) m.set(i, i, true);
  EXPECT_EQ(m.rank(), 5u);
}

TEST(Gf2Matrix, ZeroRankZero) {
  Gf2Matrix m(4, 6);
  EXPECT_EQ(m.rank(), 0u);
}

TEST(Gf2Matrix, DuplicateRowsLoseRank) {
  const auto bm = bool_matrix(3, 3, {1, 0, 1, 1, 0, 1, 0, 1, 0});
  EXPECT_EQ(Gf2Matrix::from_bool_matrix(bm).rank(), 2u);
}

TEST(Gf2Matrix, RankAtMostMinDim) {
  Rng rng(5);
  Gf2Matrix m(7, 3);
  for (std::size_t r = 0; r < 7; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m.set(r, c, rng.next_bool());
  }
  EXPECT_LE(m.rank(), 3u);
}

TEST(Gf2Matrix, WideMatrixBeyondOneWord) {
  // 100 columns crosses the 64-bit word boundary.
  Gf2Matrix m(100, 100);
  for (std::size_t i = 0; i < 100; ++i) m.set(i, 99 - i, true);
  EXPECT_EQ(m.rank(), 100u);
}

TEST(Gf2Matrix, GetSetRoundTrip) {
  Gf2Matrix m(2, 70);
  m.set(1, 65, true);
  EXPECT_TRUE(m.get(1, 65));
  m.set(1, 65, false);
  EXPECT_FALSE(m.get(1, 65));
  EXPECT_THROW(m.get(2, 0), std::invalid_argument);
}

// Column-at-a-time reference elimination (the pre-four-Russians algorithm),
// the ground truth the striped implementation must reproduce exactly.
std::size_t schoolbook_gf2_rank(const Gf2Matrix& m) {
  const std::size_t rows = m.rows(), cols = m.cols();
  std::vector<std::vector<bool>> work(rows, std::vector<bool>(cols));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) work[r][c] = m.get(r, c);
  }
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols && rank < rows; ++col) {
    std::size_t pivot = rows;
    for (std::size_t r = rank; r < rows; ++r) {
      if (work[r][col]) {
        pivot = r;
        break;
      }
    }
    if (pivot == rows) continue;
    std::swap(work[pivot], work[rank]);
    for (std::size_t r = rank + 1; r < rows; ++r) {
      if (work[r][col]) {
        for (std::size_t c = col; c < cols; ++c) work[r][c] = work[r][c] ^ work[rank][c];
      }
    }
    ++rank;
  }
  return rank;
}

Gf2Matrix random_gf2(std::size_t rows, std::size_t cols, double density, Rng& rng) {
  Gf2Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.next_bernoulli(density)) m.set(r, c, true);
    }
  }
  return m;
}

TEST(Gf2Matrix, FourRussiansMatchesSchoolbookOnRandomShapes) {
  Rng rng(33);
  // Shapes chosen to hit every stripe path: partial final stripes, more
  // rows than table entries and fewer, multi-word rows, tall and wide.
  const std::size_t shapes[][2] = {{1, 1},  {7, 13},   {64, 64},  {65, 100},
                                   {100, 65}, {300, 40}, {40, 300}, {129, 129}};
  for (const auto& s : shapes) {
    for (double density : {0.05, 0.5, 0.95}) {
      const Gf2Matrix m = random_gf2(s[0], s[1], density, rng);
      EXPECT_EQ(m.rank(), schoolbook_gf2_rank(m))
          << s[0] << "x" << s[1] << " density " << density;
    }
  }
}

TEST(Gf2Matrix, RankIsIdenticalAtEveryThreadCount) {
  Rng rng(34);
  const Gf2Matrix m = random_gf2(400, 300, 0.3, rng);
  const std::size_t serial = m.rank(1);
  for (unsigned threads : {2u, 8u}) {
    EXPECT_EQ(m.rank(threads), serial) << "threads=" << threads;
  }
}

TEST(ModpMatrix, RankIsIdenticalAtEveryThreadCount) {
  Rng rng(35);
  BoolMatrix bm;
  bm.rows = bm.cols = 120;
  bm.data.resize(bm.rows * bm.cols);
  for (auto& x : bm.data) x = rng.next_bool() ? 1 : 0;
  const ModpMatrix m = ModpMatrix::from_bool_matrix(bm, kPrime30A);
  const std::size_t serial = m.rank(1);
  for (unsigned threads : {2u, 8u}) {
    EXPECT_EQ(m.rank(threads), serial) << "threads=" << threads;
  }
}

TEST(RankCrossCheck, Gf2VsModpOnRandomJoinSubmatrices) {
  // Random principal submatrices of the join matrix M_6. Both ranks lower-
  // bound the rational rank; GF(2) can lose genuinely more (M_n itself has
  // GF(2) rank 2^{n-1}), so the contract is rank_gf2 <= rank_modp, with
  // equality forced whenever GF(2) already certifies full rank.
  const BoolMatrix m6 = partition_join_matrix(6);
  Rng rng(36);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<std::size_t> keep;
    for (std::size_t i = 0; i < m6.rows; ++i) {
      if (rng.next_bernoulli(0.3)) keep.push_back(i);
    }
    if (keep.empty()) continue;
    BoolMatrix sub;
    sub.rows = sub.cols = keep.size();
    sub.data.resize(keep.size() * keep.size());
    for (std::size_t r = 0; r < keep.size(); ++r) {
      for (std::size_t c = 0; c < keep.size(); ++c) {
        sub.at(r, c) = m6.at(keep[r], keep[c]);
      }
    }
    const std::size_t r2 = Gf2Matrix::from_bool_matrix(sub).rank();
    const std::size_t rp = ModpMatrix::from_bool_matrix(sub, kPrime30A).rank();
    EXPECT_LE(r2, rp) << "trial " << trial << " dim " << keep.size();
    if (r2 == keep.size()) EXPECT_EQ(rp, keep.size());
  }
}

TEST(ModpMatrix, IdentityFullRank) {
  ModpMatrix m(6, 6, kPrime30A);
  for (std::size_t i = 0; i < 6; ++i) m.set(i, i, 1 + i);
  EXPECT_EQ(m.rank(), 6u);
}

TEST(ModpMatrix, SingularExample) {
  // Row3 = Row1 + Row2 over the integers, hence mod p.
  ModpMatrix m(3, 3, kPrime30A);
  const std::uint64_t rows[3][3] = {{1, 2, 3}, {4, 5, 6}, {5, 7, 9}};
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m.set(r, c, rows[r][c]);
  }
  EXPECT_EQ(m.rank(), 2u);
}

TEST(ModpMatrix, InverseIsCorrect) {
  for (std::uint64_t x : std::initializer_list<std::uint64_t>{2, 3, 123456, kPrime30A - 1}) {
    const std::uint64_t inv = modp_inverse(x, kPrime30A);
    EXPECT_EQ((static_cast<unsigned __int128>(x) * inv) % kPrime30A, 1u);
  }
  EXPECT_THROW(modp_inverse(0, kPrime30A), std::invalid_argument);
}

TEST(ModpMatrix, AgreesWithGf2OnRandomFullRank) {
  // A random 0/1 matrix that is full rank over GF(2) must be full rank over
  // GF(p) too (odd determinant is nonzero mod a large prime? No — only
  // nonzero over Q; mod p it could vanish, but for random p that event has
  // probability ~det/p and our dims keep det far below p^2 overflow; we only
  // assert rank_modp >= rank over Q is impossible, i.e. modp <= dimension).
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    BoolMatrix bm;
    bm.rows = bm.cols = 12;
    bm.data.resize(144);
    for (auto& x : bm.data) x = rng.next_bool() ? 1 : 0;
    const std::size_t r2 = Gf2Matrix::from_bool_matrix(bm).rank();
    const std::size_t rp = ModpMatrix::from_bool_matrix(bm, kPrime30A).rank();
    // Rational rank >= both; and GF(2) full rank implies rational full rank.
    EXPECT_LE(r2, 12u);
    EXPECT_LE(rp, 12u);
    if (r2 == 12u) {
      EXPECT_EQ(rp, 12u);
    }
  }
}

TEST(ModpMatrix, TwoPrimesAgreeOnIntegerMatrix) {
  Rng rng(21);
  BoolMatrix bm;
  bm.rows = bm.cols = 10;
  bm.data.resize(100);
  for (auto& x : bm.data) x = rng.next_bool() ? 1 : 0;
  EXPECT_EQ(ModpMatrix::from_bool_matrix(bm, kPrime30A).rank(),
            ModpMatrix::from_bool_matrix(bm, kPrime30B).rank());
}

}  // namespace
}  // namespace bcclb

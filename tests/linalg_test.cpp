// Tests for GF(2) and mod-p matrix ranks.
#include <gtest/gtest.h>

#include "common/random.h"
#include "linalg/gf2_matrix.h"
#include "linalg/modp_matrix.h"

namespace bcclb {
namespace {

BoolMatrix bool_matrix(std::size_t rows, std::size_t cols,
                       std::initializer_list<std::uint8_t> entries) {
  BoolMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.data.assign(entries);
  return m;
}

TEST(Gf2Matrix, IdentityFullRank) {
  Gf2Matrix m(5, 5);
  for (std::size_t i = 0; i < 5; ++i) m.set(i, i, true);
  EXPECT_EQ(m.rank(), 5u);
}

TEST(Gf2Matrix, ZeroRankZero) {
  Gf2Matrix m(4, 6);
  EXPECT_EQ(m.rank(), 0u);
}

TEST(Gf2Matrix, DuplicateRowsLoseRank) {
  const auto bm = bool_matrix(3, 3, {1, 0, 1, 1, 0, 1, 0, 1, 0});
  EXPECT_EQ(Gf2Matrix::from_bool_matrix(bm).rank(), 2u);
}

TEST(Gf2Matrix, RankAtMostMinDim) {
  Rng rng(5);
  Gf2Matrix m(7, 3);
  for (std::size_t r = 0; r < 7; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m.set(r, c, rng.next_bool());
  }
  EXPECT_LE(m.rank(), 3u);
}

TEST(Gf2Matrix, WideMatrixBeyondOneWord) {
  // 100 columns crosses the 64-bit word boundary.
  Gf2Matrix m(100, 100);
  for (std::size_t i = 0; i < 100; ++i) m.set(i, 99 - i, true);
  EXPECT_EQ(m.rank(), 100u);
}

TEST(Gf2Matrix, GetSetRoundTrip) {
  Gf2Matrix m(2, 70);
  m.set(1, 65, true);
  EXPECT_TRUE(m.get(1, 65));
  m.set(1, 65, false);
  EXPECT_FALSE(m.get(1, 65));
  EXPECT_THROW(m.get(2, 0), std::invalid_argument);
}

TEST(ModpMatrix, IdentityFullRank) {
  ModpMatrix m(6, 6, kPrime30A);
  for (std::size_t i = 0; i < 6; ++i) m.set(i, i, 1 + i);
  EXPECT_EQ(m.rank(), 6u);
}

TEST(ModpMatrix, SingularExample) {
  // Row3 = Row1 + Row2 over the integers, hence mod p.
  ModpMatrix m(3, 3, kPrime30A);
  const std::uint64_t rows[3][3] = {{1, 2, 3}, {4, 5, 6}, {5, 7, 9}};
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m.set(r, c, rows[r][c]);
  }
  EXPECT_EQ(m.rank(), 2u);
}

TEST(ModpMatrix, InverseIsCorrect) {
  for (std::uint64_t x : std::initializer_list<std::uint64_t>{2, 3, 123456, kPrime30A - 1}) {
    const std::uint64_t inv = modp_inverse(x, kPrime30A);
    EXPECT_EQ((static_cast<unsigned __int128>(x) * inv) % kPrime30A, 1u);
  }
  EXPECT_THROW(modp_inverse(0, kPrime30A), std::invalid_argument);
}

TEST(ModpMatrix, AgreesWithGf2OnRandomFullRank) {
  // A random 0/1 matrix that is full rank over GF(2) must be full rank over
  // GF(p) too (odd determinant is nonzero mod a large prime? No — only
  // nonzero over Q; mod p it could vanish, but for random p that event has
  // probability ~det/p and our dims keep det far below p^2 overflow; we only
  // assert rank_modp >= rank over Q is impossible, i.e. modp <= dimension).
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    BoolMatrix bm;
    bm.rows = bm.cols = 12;
    bm.data.resize(144);
    for (auto& x : bm.data) x = rng.next_bool() ? 1 : 0;
    const std::size_t r2 = Gf2Matrix::from_bool_matrix(bm).rank();
    const std::size_t rp = ModpMatrix::from_bool_matrix(bm, kPrime30A).rank();
    // Rational rank >= both; and GF(2) full rank implies rational full rank.
    EXPECT_LE(r2, 12u);
    EXPECT_LE(rp, 12u);
    if (r2 == 12u) {
      EXPECT_EQ(rp, 12u);
    }
  }
}

TEST(ModpMatrix, TwoPrimesAgreeOnIntegerMatrix) {
  Rng rng(21);
  BoolMatrix bm;
  bm.rows = bm.cols = 10;
  bm.data.resize(100);
  for (auto& x : bm.data) x = rng.next_bool() ? 1 : 0;
  EXPECT_EQ(ModpMatrix::from_bool_matrix(bm, kPrime30A).rank(),
            ModpMatrix::from_bool_matrix(bm, kPrime30B).rank());
}

}  // namespace
}  // namespace bcclb

// Tests for weighted graphs and minimum spanning forests over broadcast.
#include <gtest/gtest.h>

#include "bcc/algorithms/boruvka_mst.h"
#include "common/random.h"
#include "graph/components.h"
#include "graph/weighted.h"

namespace bcclb {
namespace {

TEST(WeightedGraph, BasicAccessors) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 5);
  g.add_edge(2, 1, 7);
  EXPECT_EQ(g.weight(0, 1), 5u);
  EXPECT_EQ(g.weight(1, 0), 5u);
  EXPECT_EQ(g.weight(1, 2), 7u);
  EXPECT_THROW(g.weight(0, 3), std::invalid_argument);
  const auto inc = g.incident(1);
  EXPECT_EQ(inc.size(), 2u);
}

TEST(WeightedGraph, EdgeCanonicalization) {
  const WeightedEdge e(3, 1, 9);
  EXPECT_EQ(e.u, 1u);
  EXPECT_EQ(e.v, 3u);
}

TEST(Kruskal, HandComputedExample) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 3);
  g.add_edge(3, 0, 4);
  g.add_edge(0, 2, 5);
  const auto tree = kruskal_msf(g);
  ASSERT_EQ(tree.size(), 3u);
  EXPECT_EQ(total_weight(tree), 6u);
  EXPECT_EQ(tree[0], WeightedEdge(0, 1, 1));
  EXPECT_EQ(tree[2], WeightedEdge(2, 3, 3));
}

TEST(Kruskal, ForestOnDisconnectedInput) {
  WeightedGraph g(6);
  g.add_edge(0, 1, 3);
  g.add_edge(1, 2, 1);
  g.add_edge(0, 2, 2);
  g.add_edge(3, 4, 9);
  const auto tree = kruskal_msf(g);
  EXPECT_EQ(tree.size(), 3u);  // 2 + 1 edges across two components
  EXPECT_EQ(total_weight(tree), 1u + 2u + 9u);
}

TEST(RandomWeighted, UniqueWeightsAreUnique) {
  Rng rng(1);
  const WeightedGraph g = random_weighted_gnp(20, 0.3, 50, true, rng);
  std::set<std::uint32_t> ws;
  for (const auto& e : g.edges()) EXPECT_TRUE(ws.insert(e.w).second);
}

class MstSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MstSweep, BroadcastForestMatchesKruskal) {
  const std::size_t n = GetParam();
  Rng rng(n * 7);
  for (int trial = 0; trial < 6; ++trial) {
    const WeightedGraph g =
        random_weighted_gnp(n, 2.5 / static_cast<double>(n), 100, false, rng);
    const MstRun out = run_boruvka_mst(g, 8);
    EXPECT_TRUE(out.run.all_finished);
    const auto want = kruskal_msf(g);
    EXPECT_EQ(out.forest, want) << "n=" << n << " trial=" << trial;
    EXPECT_EQ(out.run.decision, is_connected(g.skeleton()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MstSweep, ::testing::Values(6, 12, 24, 48));

TEST(Mst, DenseGraphWithDuplicateWeights) {
  Rng rng(9);
  const WeightedGraph g = random_weighted_gnp(16, 0.5, 4, false, rng);  // many ties
  const MstRun out = run_boruvka_mst(g, 8);
  EXPECT_EQ(out.forest, kruskal_msf(g));
  EXPECT_EQ(total_weight(out.forest), total_weight(kruskal_msf(g)));
}

TEST(Mst, EmptyAndSingleEdge) {
  const MstRun none = run_boruvka_mst(WeightedGraph(5), 8);
  EXPECT_TRUE(none.forest.empty());
  EXPECT_FALSE(none.run.decision);

  WeightedGraph one(3);
  one.add_edge(0, 2, 42);
  const MstRun single = run_boruvka_mst(one, 8);
  ASSERT_EQ(single.forest.size(), 1u);
  EXPECT_EQ(single.forest[0], WeightedEdge(0, 2, 42));
}

TEST(Mst, NarrowBandwidthSplitsPhases) {
  Rng rng(11);
  const WeightedGraph g = random_weighted_gnp(12, 0.4, 100, true, rng);
  const MstRun wide = run_boruvka_mst(g, 21);   // 1 + 4 + 16 bits in one round
  const MstRun narrow = run_boruvka_mst(g, 3);  // 7 rounds per phase
  EXPECT_EQ(wide.forest, narrow.forest);
  EXPECT_EQ(narrow.run.rounds_executed, wide.run.rounds_executed * 7);
}

TEST(Mst, RejectsOversizedWeights) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 1u << 16);
  EXPECT_THROW(BoruvkaMstAlgorithm{g}, std::invalid_argument);
}

TEST(Mst, ComponentLabelsAreMinIds) {
  Rng rng(13);
  const WeightedGraph g = random_weighted_gnp(15, 0.1, 100, false, rng);
  const MstRun out = run_boruvka_mst(g, 8);
  const auto labels = component_labels(g.skeleton());
  for (VertexId v = 0; v < 15; ++v) {
    ASSERT_TRUE(out.run.labels[v].has_value());
    EXPECT_EQ(*out.run.labels[v], labels[v]);
  }
}

}  // namespace
}  // namespace bcclb

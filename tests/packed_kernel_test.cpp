// Tests for the packed combinatorial kernel: the 64-bit successor-word
// encoding of cycle structures, CSR adjacency, the hash-indexed crossing
// kernel against a structure-level reference builder, and determinism of the
// sharded build across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "crossing/csr_adjacency.h"
#include "crossing/indistinguishability_graph.h"
#include "crossing/matching.h"
#include "graph/cycle_structure.h"

namespace bcclb {
namespace {

// ---- Packed successor words -------------------------------------------------

TEST(PackedStructure, RoundTripsAllStructuresUpTo8) {
  for (std::size_t n = 6; n <= 8; ++n) {
    for (const auto& cs : all_one_cycle_structures(n)) {
      EXPECT_EQ(CycleStructure::from_packed(cs.packed_successors(), n), cs);
    }
    for (const auto& cs : all_two_cycle_structures(n)) {
      EXPECT_EQ(CycleStructure::from_packed(cs.packed_successors(), n), cs);
    }
  }
}

TEST(PackedStructure, SuccessorAccessorsMatchDirectedEdges) {
  for (const auto& cs : all_two_cycle_structures(7)) {
    const PackedStructure s = cs.packed_successors();
    for (const DirectedEdge& e : cs.directed_edges()) {
      EXPECT_EQ(packed_successor(s, e.tail), e.head);
    }
  }
}

TEST(PackedStructure, WithSuccessorWritesOneNibble) {
  PackedStructure s = 0;
  s = packed_with_successor(s, 3, 9);
  s = packed_with_successor(s, 0, 15);
  EXPECT_EQ(packed_successor(s, 3), 9u);
  EXPECT_EQ(packed_successor(s, 0), 15u);
  s = packed_with_successor(s, 3, 1);
  EXPECT_EQ(packed_successor(s, 3), 1u);
  EXPECT_EQ(packed_successor(s, 0), 15u);
}

TEST(PackedStructure, CanonicalPackedIsCanonicalizationInWordForm) {
  // Crossing any independent pair and re-canonicalizing through the packed
  // path must agree with the structure-level crossed() (which canonicalizes
  // through vectors of cycles).
  for (const auto& cs : all_one_cycle_structures(7)) {
    const PackedStructure s = cs.packed_successors();
    const auto edges = cs.directed_edges();
    for (std::size_t a = 0; a < edges.size(); ++a) {
      for (std::size_t b = a + 1; b < edges.size(); ++b) {
        if (!cs.edges_independent(edges[a], edges[b])) continue;
        PackedStructure crossed = packed_with_successor(s, edges[a].tail, edges[b].head);
        crossed = packed_with_successor(crossed, edges[b].tail, edges[a].head);
        EXPECT_EQ(canonical_packed(crossed, 7),
                  cs.crossed(edges[a], edges[b]).packed_successors());
      }
    }
  }
}

// ---- CSR adjacency ----------------------------------------------------------

TEST(CsrAdjacency, NestedRoundTrip) {
  const std::vector<std::vector<std::uint32_t>> nested{{3, 1}, {}, {2}, {0, 0, 7}};
  const CsrAdjacency csr = CsrAdjacency::from_nested(nested);
  EXPECT_EQ(csr.num_rows(), 4u);
  EXPECT_EQ(csr.num_entries(), 6u);
  EXPECT_EQ(csr.row_size(1), 0u);
  EXPECT_EQ(csr.row(3).size(), 3u);
  EXPECT_EQ(csr.row(0)[0], 3u);
  EXPECT_EQ(csr.to_nested(), nested);
}

// ---- Kernel vs structure-level reference builder ----------------------------

// The pre-packed builder, reconstructed verbatim at structure level: cross
// every independent active pair, canonicalize, dedup by string key against
// the enumeration order of V2.
std::vector<std::vector<std::uint32_t>> reference_adjacency(std::size_t n) {
  const auto one_cycles = all_one_cycle_structures(n);
  const auto two_cycles = all_two_cycle_structures(n);
  std::map<std::string, std::uint32_t> index;
  for (std::uint32_t j = 0; j < two_cycles.size(); ++j) index[two_cycles[j].key()] = j;
  std::vector<std::vector<std::uint32_t>> adj(one_cycles.size());
  for (std::size_t i = 0; i < one_cycles.size(); ++i) {
    const auto edges = one_cycles[i].directed_edges();
    for (std::size_t a = 0; a < edges.size(); ++a) {
      for (std::size_t b = a + 1; b < edges.size(); ++b) {
        if (!one_cycles[i].edges_independent(edges[a], edges[b])) continue;
        adj[i].push_back(index.at(one_cycles[i].crossed(edges[a], edges[b]).key()));
      }
    }
    std::sort(adj[i].begin(), adj[i].end());
    adj[i].erase(std::unique(adj[i].begin(), adj[i].end()), adj[i].end());
  }
  return adj;
}

TEST(PackedKernel, MatchesReferenceBuilderAllActive) {
  for (std::size_t n = 6; n <= 8; ++n) {
    const auto g = build_indistinguishability_graph(n, all_edges_active());
    EXPECT_EQ(g.adj, CsrAdjacency::from_nested(reference_adjacency(n))) << "n=" << n;
  }
}

TEST(PackedKernel, ThreadCountDoesNotChangeTheBytes) {
  const auto serial = build_indistinguishability_graph(8, all_edges_active(), 1);
  for (unsigned threads : {2u, 8u}) {
    const auto parallel = build_indistinguishability_graph(8, all_edges_active(), threads);
    EXPECT_EQ(parallel.adj, serial.adj) << "threads=" << threads;
    EXPECT_EQ(parallel.one_cycles, serial.one_cycles);
    EXPECT_EQ(parallel.two_cycles, serial.two_cycles);
  }
}

TEST(PackedKernel, RestrictedActivityTableMatchesClosure) {
  // An activity notion that depends on the structure (every other clockwise
  // edge, by tail parity) exercised through both entry points.
  const auto restricted = [](const CycleStructure& cs) {
    std::vector<DirectedEdge> out;
    for (const DirectedEdge& e : cs.directed_edges()) {
      if (e.tail % 2 == 0) out.push_back(e);
    }
    return out;
  };
  const std::size_t n = 7;
  const auto one_cycles = all_one_cycle_structures(n);
  ActiveEdgeTable table;
  for (const auto& cs : one_cycles) {
    const auto row = restricted(cs);
    table.push_row(row);
  }
  const auto via_fn = build_indistinguishability_graph(n, ActiveEdgeFn(restricted));
  const auto via_table = build_indistinguishability_graph(n, table);
  EXPECT_EQ(via_fn.adj, via_table.adj);
  // And fewer active edges can only shrink the graph.
  const auto all_active = build_indistinguishability_graph(n, all_edges_active());
  EXPECT_LT(via_fn.num_edges(), all_active.num_edges());
}

// ---- CSR matching vs legacy nested adjacency --------------------------------

TEST(CsrMatching, AgreesWithNestedOverloadsOnIndistGraph) {
  const auto g = build_indistinguishability_graph(7, all_edges_active());
  const auto nested = g.adj.to_nested();
  EXPECT_EQ(max_bipartite_matching(g.adj, g.two_cycles.size()),
            max_bipartite_matching(nested, g.two_cycles.size()));
  EXPECT_EQ(max_saturating_k(g.adj, g.two_cycles.size(), 8),
            max_saturating_k(nested, g.two_cycles.size(), 8));
}

TEST(CsrMatching, ImplicitCloningMatchesExplicitClones) {
  // HopcroftKarp(adj, right, k) must equal the explicit construction that
  // copies each positive-degree row k times.
  const std::vector<std::vector<std::uint32_t>> nested{
      {0, 1, 2, 3}, {}, {1, 2}, {0, 3, 4, 5}, {2}};
  const CsrAdjacency adj = CsrAdjacency::from_nested(nested);
  for (unsigned k = 1; k <= 3; ++k) {
    std::vector<std::vector<std::uint32_t>> cloned;
    for (const auto& row : nested) {
      if (row.empty()) continue;
      for (unsigned c = 0; c < k; ++c) cloned.push_back(row);
    }
    HopcroftKarp implicit(adj, 6, k);
    HopcroftKarp explicit_hk(cloned, 6);
    EXPECT_EQ(implicit.max_matching(), explicit_hk.max_matching()) << "k=" << k;
  }
}

}  // namespace
}  // namespace bcclb

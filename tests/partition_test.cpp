// Tests for the set-partition lattice, Bell numbers, enumeration, indexing,
// sampling and perfect-matching partitions.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/random.h"
#include "partition/bell.h"
#include "partition/enumeration.h"
#include "partition/moebius.h"
#include "partition/pair_partition.h"
#include "partition/sampling.h"
#include "partition/set_partition.h"

namespace bcclb {
namespace {

SetPartition from_blocks(std::size_t n, std::vector<std::vector<std::uint32_t>> blocks) {
  return SetPartition::from_blocks(n, blocks);
}

TEST(SetPartition, RgsValidation) {
  EXPECT_NO_THROW(SetPartition({0, 1, 0, 2}));
  EXPECT_THROW(SetPartition({1, 0}), std::invalid_argument);
  EXPECT_THROW(SetPartition({0, 2}), std::invalid_argument);
}

TEST(SetPartition, FinestAndCoarsest) {
  const auto f = SetPartition::finest(5);
  const auto c = SetPartition::coarsest(5);
  EXPECT_TRUE(f.is_finest());
  EXPECT_EQ(f.num_blocks(), 5u);
  EXPECT_TRUE(c.is_coarsest());
  EXPECT_EQ(c.num_blocks(), 1u);
  EXPECT_TRUE(f.refines(c));
  EXPECT_FALSE(c.refines(f));
}

TEST(SetPartition, FromBlocksAndToString) {
  // The paper's example: PA = (1,2)(3,4)(5) — 0-based blocks {0,1},{2,3},{4}.
  const auto pa = from_blocks(5, {{0, 1}, {2, 3}, {4}});
  EXPECT_EQ(pa.to_string(), "(1,2)(3,4)(5)");
  EXPECT_EQ(pa.num_blocks(), 3u);
  EXPECT_TRUE(pa.same_block(0, 1));
  EXPECT_FALSE(pa.same_block(1, 2));
}

TEST(SetPartition, FromBlocksValidates) {
  EXPECT_THROW(from_blocks(3, {{0, 1}}), std::invalid_argument);          // missing 2
  EXPECT_THROW(from_blocks(3, {{0, 1}, {1, 2}}), std::invalid_argument);  // overlap
  EXPECT_THROW(from_blocks(3, {{0, 1, 5}}), std::invalid_argument);       // out of range
}

TEST(SetPartition, PaperJoinExamples) {
  // Section 1.1: PA = (1,2)(3,4)(5), PB = (1,2,4)(3)(5), PC = (1,2,4)(3,5).
  const auto pa = from_blocks(5, {{0, 1}, {2, 3}, {4}});
  const auto pb = from_blocks(5, {{0, 1, 3}, {2}, {4}});
  const auto pc = from_blocks(5, {{0, 1, 3}, {2, 4}});
  EXPECT_EQ(pa.join(pb).to_string(), "(1,2,3,4)(5)");
  EXPECT_EQ(pa.join(pc).to_string(), "(1,2,3,4,5)");
  EXPECT_TRUE(pa.join(pc).is_coarsest());
  EXPECT_FALSE(pa.join(pb).is_coarsest());
}

TEST(SetPartition, PaperRefinementExample) {
  // Footnote 2: (1,2)(3,4)(5) is a refinement of (1,2)(3,4,5).
  const auto fine = from_blocks(5, {{0, 1}, {2, 3}, {4}});
  const auto coarse = from_blocks(5, {{0, 1}, {2, 3, 4}});
  EXPECT_TRUE(fine.refines(coarse));
  EXPECT_FALSE(coarse.refines(fine));
}

TEST(SetPartition, MeetIsCoarsestCommonRefinement) {
  const auto pa = from_blocks(4, {{0, 1, 2}, {3}});
  const auto pb = from_blocks(4, {{0, 1}, {2, 3}});
  const auto m = pa.meet(pb);
  EXPECT_EQ(m.to_string(), "(1,2)(3)(4)");
  EXPECT_TRUE(m.refines(pa));
  EXPECT_TRUE(m.refines(pb));
}

class LatticeLaws : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LatticeLaws, JoinAndMeetSatisfyLatticeAxioms) {
  const std::size_t n = GetParam();
  const auto parts = all_partitions(n);
  for (const auto& p : parts) {
    EXPECT_EQ(p.join(p), p);
    EXPECT_EQ(p.meet(p), p);
    EXPECT_TRUE(p.refines(p));
    for (const auto& q : parts) {
      const auto j = p.join(q);
      const auto m = p.meet(q);
      EXPECT_EQ(j, q.join(p));
      EXPECT_EQ(m, q.meet(p));
      // Join is an upper bound; meet a lower bound.
      EXPECT_TRUE(p.refines(j));
      EXPECT_TRUE(q.refines(j));
      EXPECT_TRUE(m.refines(p));
      EXPECT_TRUE(m.refines(q));
      // Absorption.
      EXPECT_EQ(p.join(m), p);
      EXPECT_EQ(p.meet(j), p);
    }
  }
}

TEST_P(LatticeLaws, JoinIsLeastUpperBound) {
  const std::size_t n = GetParam();
  const auto parts = all_partitions(n);
  for (const auto& p : parts) {
    for (const auto& q : parts) {
      const auto j = p.join(q);
      for (const auto& u : parts) {
        if (p.refines(u) && q.refines(u)) {
          EXPECT_TRUE(j.refines(u)) << p.to_string() << " v " << q.to_string();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallGrounds, LatticeLaws, ::testing::Values(1, 2, 3, 4));

TEST(Bell, KnownValues) {
  const std::uint64_t known[] = {1, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975};
  for (std::size_t n = 0; n <= 10; ++n) {
    EXPECT_EQ(bell_number_u64(n), known[n]) << "n=" << n;
  }
  EXPECT_EQ(bell_number(25).to_decimal(), "4638590332229999353");
  // B_26 overflows u64.
  EXPECT_FALSE(bell_number(26).fits_u64());
  EXPECT_THROW(bell_number_u64(26), std::invalid_argument);
}

TEST(Bell, Log2MatchesExactForSmallN) {
  for (std::size_t n = 1; n <= 20; ++n) {
    EXPECT_NEAR(log2_bell(n), bell_number(n).log2(), 1e-12);
  }
  // Θ(n log n) growth: log2(B_n) / (n log2 n) stays in a mild band.
  const double r100 = log2_bell(100) / (100 * std::log2(100.0));
  EXPECT_GT(r100, 0.3);
  EXPECT_LT(r100, 1.0);
}

TEST(Bell, StirlingRowsSumToBell) {
  for (std::size_t n = 1; n <= 12; ++n) {
    BigUint sum(0);
    for (std::size_t k = 0; k <= n; ++k) sum += stirling2(n, k);
    EXPECT_EQ(sum, bell_number(n)) << "n=" << n;
  }
}

TEST(Enumeration, CountsMatchBell) {
  for (std::size_t n = 1; n <= 8; ++n) {
    EXPECT_EQ(all_partitions(n).size(), bell_number_u64(n)) << "n=" << n;
  }
}

TEST(Enumeration, AllDistinctAndFirstIsCoarsest) {
  const auto parts = all_partitions(5);
  std::set<std::vector<std::uint32_t>> seen;
  for (const auto& p : parts) seen.insert(p.rgs());
  EXPECT_EQ(seen.size(), parts.size());
  EXPECT_TRUE(parts.front().is_coarsest());  // all-zero RGS
  EXPECT_TRUE(parts.back().is_finest());     // 0,1,2,3,4
}

TEST(Enumeration, IndexIsInverseOfOrder) {
  for (std::size_t n : {1u, 3u, 5u, 7u}) {
    const auto parts = all_partitions(n);
    for (std::size_t i = 0; i < parts.size(); ++i) {
      EXPECT_EQ(partition_index(parts[i]), i) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Enumeration, ForEachEarlyStop) {
  std::size_t count = 0;
  for_each_partition(6, [&](const SetPartition&) { return ++count < 10; });
  EXPECT_EQ(count, 10u);
}

TEST(Sampling, UniformPartitionIsUniform) {
  // Exact uniformity check by frequency over all B_4 = 15 partitions.
  Rng rng(123);
  std::map<std::vector<std::uint32_t>, int> freq;
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) freq[uniform_partition(4, rng).rgs()]++;
  EXPECT_EQ(freq.size(), 15u);
  for (const auto& [rgs, count] : freq) {
    EXPECT_GT(count, trials / 15 - 400);
    EXPECT_LT(count, trials / 15 + 400);
  }
}

TEST(Sampling, WithBlocksRespectsBlockCount) {
  Rng rng(5);
  for (std::size_t k = 1; k <= 6; ++k) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(uniform_partition_with_blocks(6, k, rng).num_blocks(), k);
    }
  }
}

TEST(Sampling, WithBlocksUniformOverStirlingClass) {
  // S(5, 2) = 15 partitions; check rough uniformity.
  Rng rng(77);
  std::map<std::vector<std::uint32_t>, int> freq;
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) freq[uniform_partition_with_blocks(5, 2, rng).rgs()]++;
  EXPECT_EQ(freq.size(), 15u);
  for (const auto& [rgs, count] : freq) {
    EXPECT_GT(count, trials / 15 - 400);
    EXPECT_LT(count, trials / 15 + 400);
  }
}

TEST(PerfectMatchings, CountAndShape) {
  for (std::size_t n : {2u, 4u, 6u, 8u}) {
    const auto all = all_perfect_matchings(n);
    EXPECT_EQ(all.size(), num_perfect_matchings(n));
    for (const auto& m : all) EXPECT_TRUE(m.is_perfect_matching());
  }
}

TEST(PerfectMatchings, IndexRoundTrip) {
  const std::size_t n = 8;
  const auto all = all_perfect_matchings(n);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(perfect_matching_index(all[i]), i);
    EXPECT_EQ(perfect_matching_from_index(n, i), all[i]);
  }
}

TEST(PerfectMatchings, RandomIsUniform) {
  Rng rng(9);
  std::map<std::uint64_t, int> freq;
  const int trials = 15000;
  for (int i = 0; i < trials; ++i) {
    freq[perfect_matching_index(random_perfect_matching(6, rng))]++;
  }
  EXPECT_EQ(freq.size(), 15u);
  for (const auto& [idx, count] : freq) {
    EXPECT_GT(count, trials / 15 - 300);
    EXPECT_LT(count, trials / 15 + 300);
  }
}

TEST(PerfectMatchings, PairsAreSortedBlocks) {
  const auto m = SetPartition::from_blocks(6, {{5, 0}, {1, 3}, {2, 4}});
  ASSERT_TRUE(m.is_perfect_matching());
  const auto pairs = matching_pairs(m);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (std::pair<std::uint32_t, std::uint32_t>{0, 5}));
  EXPECT_EQ(pairs[1], (std::pair<std::uint32_t, std::uint32_t>{1, 3}));
}

TEST(PerfectMatchings, NonMatchingRejected) {
  EXPECT_THROW(perfect_matching_index(SetPartition::coarsest(4)), std::invalid_argument);
  EXPECT_FALSE(SetPartition::coarsest(4).is_perfect_matching());
  EXPECT_FALSE(SetPartition::finest(4).is_perfect_matching());
}

TEST(Whitney, BlockCountsFollowStirling) {
  // Whitney numbers of the second kind of Π_n: the number of partitions
  // with exactly k blocks is S(n, k).
  for (std::size_t n = 1; n <= 8; ++n) {
    std::map<std::size_t, std::uint64_t> by_blocks;
    for_each_partition(n, [&](const SetPartition& p) {
      ++by_blocks[p.num_blocks()];
      return true;
    });
    for (std::size_t k = 1; k <= n; ++k) {
      EXPECT_EQ(BigUint(by_blocks[k]), stirling2(n, k)) << "n=" << n << " k=" << k;
    }
  }
}

TEST(Moebius, BottomTopIsSignedFactorial) {
  // µ(0̂, 1̂) of Π_n = (-1)^{n-1} (n-1)! — the geometric-lattice identity
  // behind the Dowling–Wilson rank theorem (Theorem 2.3's citation).
  std::int64_t factorial = 1;
  for (std::size_t n = 1; n <= 6; ++n) {
    if (n > 1) factorial *= static_cast<std::int64_t>(n - 1);
    const std::int64_t expect = (n % 2 == 1 ? 1 : -1) * factorial;
    EXPECT_EQ(moebius_bottom_top(n), expect) << "n=" << n;
  }
}

TEST(Moebius, SumOverLatticeIsZero) {
  // Σ_{ρ <= 1̂} µ(0̂, ρ) = 0 for n >= 2 (defining recursion at the top).
  for (std::size_t n = 2; n <= 6; ++n) {
    const auto mu = moebius_from_finest(n);
    std::int64_t sum = 0;
    for (std::int64_t v : mu) sum += v;
    EXPECT_EQ(sum, 0) << "n=" << n;
  }
}

TEST(Moebius, CharacteristicPolynomialIsFallingFactorial) {
  // χ_{Π_n}(x) = x (x-1) ... (x-n+1): a full structural certificate that
  // our refinement order realizes the partition lattice.
  for (std::size_t n = 1; n <= 6; ++n) {
    EXPECT_EQ(characteristic_polynomial(n), falling_factorial_coefficients(n)) << "n=" << n;
  }
}

TEST(Moebius, IntervalSignsAlternateByCorank) {
  // µ(0̂, π) has sign (-1)^(n - #blocks(π)) in a geometric lattice.
  const std::size_t n = 5;
  const auto parts = all_partitions(n);
  const auto mu = moebius_from_finest(n);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const std::size_t corank = n - parts[i].num_blocks();
    const std::int64_t sign = (corank % 2 == 0) ? 1 : -1;
    EXPECT_GT(mu[i] * sign, 0) << parts[i].to_string();
  }
}

}  // namespace
}  // namespace bcclb

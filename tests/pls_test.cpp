// Tests for proof-labeling schemes: the classical (root, dist) Connectivity
// scheme and the transcripts-as-labels construction ([PP17], Section 1.3).
#include <gtest/gtest.h>

#include <cmath>

#include "bcc/algorithms/min_id_flood.h"
#include "common/random.h"
#include "crossing/ported_instance.h"
#include "graph/generators.h"
#include "pls/connectivity_pls.h"
#include "pls/randomized_pls.h"
#include "pls/transcript_pls.h"

namespace bcclb {
namespace {

TEST(ConnectivityPls, CompletenessOnConnectedGraphs) {
  ConnectivityPls scheme;
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = random_one_cycle(10, rng).to_graph();
    const BccInstance inst = BccInstance::kt1(g);
    const PlsResult r = run_pls_honest(scheme, inst);
    EXPECT_TRUE(r.accepted) << "trial " << trial;
    EXPECT_EQ(r.max_label_bits, scheme.label_bits(10));
  }
  // Paths and random connected graphs too.
  const BccInstance path = BccInstance::kt1(path_graph(17));
  EXPECT_TRUE(run_pls_honest(ConnectivityPls{}, path).accepted);
}

TEST(ConnectivityPls, WorksInKt0) {
  // The scheme never uses peer IDs — only port-attributed labels.
  ConnectivityPls scheme;
  Rng rng(2);
  const auto cs = random_one_cycle(9, rng);
  const BccInstance inst = random_kt0_instance(cs, rng);
  EXPECT_TRUE(run_pls_honest(scheme, inst).accepted);
}

TEST(ConnectivityPls, SoundnessRejectsHonestPerComponentLabels) {
  // The strongest natural cheat on a disconnected graph: honest BFS labels
  // per component. Must be rejected (two distance-0 vertices / two roots).
  ConnectivityPls scheme;
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = random_two_cycle(11, rng).to_graph();
    const BccInstance inst = BccInstance::kt1(g);
    EXPECT_FALSE(run_pls_honest(scheme, inst).accepted) << "trial " << trial;
  }
}

TEST(ConnectivityPls, SoundnessAgainstRandomLabelings) {
  ConnectivityPls scheme;
  Rng rng(4);
  const Graph g = random_two_cycle(10, rng).to_graph();
  const BccInstance inst = BccInstance::kt1(g);
  EXPECT_EQ(count_fooling_labelings(scheme, inst, 300, rng), 0u);
}

TEST(ConnectivityPls, SoundnessAgainstCrossComponentDistanceCheat) {
  // A hand-crafted cheat: pretend both cycles hang off one root by giving
  // the second component distances continuing from the first. The grounding
  // check (an input neighbor at dist-1) must fire.
  const auto cs = CycleStructure::from_cycles(8, {{0, 1, 2, 3}, {4, 5, 6, 7}});
  const BccInstance inst = BccInstance::kt1(cs.to_graph());
  ConnectivityPls scheme;
  auto labels = scheme.prove(inst);  // per-component honest labels
  // Overwrite component 2's labels: root 0, distances 4..7 (no vertex of
  // that component has a neighbor at distance 3 — its neighbors are 4..7).
  const unsigned w = 3;  // ceil_log2(8)
  auto encode = [&](std::uint64_t root, std::uint64_t dist) {
    Label l(2 * w);
    for (unsigned i = 0; i < w; ++i) {
      l[i] = (root >> i) & 1;
      l[w + i] = (dist >> i) & 1;
    }
    return l;
  };
  labels[4] = encode(0, 4);
  labels[5] = encode(0, 5);
  labels[6] = encode(0, 6);
  labels[7] = encode(0, 5);
  EXPECT_FALSE(run_pls(scheme, inst, labels).accepted);
}

TEST(ConnectivityPls, LabelBitsAreLogarithmic) {
  ConnectivityPls scheme;
  EXPECT_EQ(scheme.label_bits(8), 6u);
  EXPECT_EQ(scheme.label_bits(9), 8u);
  EXPECT_EQ(scheme.label_bits(1024), 20u);
  EXPECT_EQ(scheme.label_bits(1025), 22u);
}

TEST(ConnectivityPls, MalformedLabelsRejected) {
  ConnectivityPls scheme;
  const BccInstance inst = BccInstance::kt1(path_graph(5));
  auto labels = scheme.prove(inst);
  labels[2].pop_back();  // wrong width
  EXPECT_FALSE(run_pls(scheme, inst, labels).accepted);
}

// ---- Transcripts as labels ---------------------------------------------------

TEST(TranscriptPls, EncodingRoundTrip) {
  const std::vector<Message> sent{Message::silent(), Message::one_bit(true),
                                  Message::one_bit(false)};
  const Label label = encode_transcript(sent, 3, 1);
  EXPECT_EQ(label.size(), 6u);
  EXPECT_EQ(decode_transcript(label, 3, 1), sent);
}

TEST(TranscriptPls, HonestTranscriptsAcceptWhenAlgorithmAccepts) {
  // Min-ID flooding is a correct Connectivity algorithm; its transcripts
  // form an accepting PLS exactly on connected instances.
  Rng rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    const bool connected = trial % 2 == 0;
    const Graph g = connected ? random_one_cycle(8, rng).to_graph()
                              : random_two_cycle(8, rng).to_graph();
    const BccInstance inst = BccInstance::kt1(g);
    const unsigned t = MinIdFloodAlgorithm::rounds_needed(8);
    TranscriptPls scheme(min_id_flood_factory(), t, 4);
    const PlsResult r = run_pls_honest(scheme, inst);
    EXPECT_EQ(r.accepted, connected) << "trial " << trial;
    EXPECT_EQ(scheme.label_bits(8), t * 5u);
  }
}

TEST(TranscriptPls, ForgedTranscriptsAreCaught) {
  // Flip a bit of one vertex's label: either that vertex's replay mismatches
  // or a neighbor's replay diverges and rejects.
  Rng rng(6);
  const Graph g = random_one_cycle(8, rng).to_graph();
  const BccInstance inst = BccInstance::kt1(g);
  const unsigned t = MinIdFloodAlgorithm::rounds_needed(8);
  TranscriptPls scheme(min_id_flood_factory(), t, 4);
  auto labels = scheme.prove(inst);
  ASSERT_TRUE(run_pls(scheme, inst, labels).accepted);
  std::size_t caught = 0, attempts = 0;
  for (std::size_t bit = 0; bit < labels[3].size(); ++bit) {
    auto forged = labels;
    forged[3][bit] = !forged[3][bit];
    ++attempts;
    if (!run_pls(scheme, inst, forged).accepted) ++caught;
  }
  // Every forgery must be caught: vertex 3's own replay pins its label
  // exactly, and silence-flag flips corrupt neighbors' inboxes.
  EXPECT_EQ(caught, attempts);
}

TEST(TranscriptPls, RealizesThePp17Reduction) {
  // Verification complexity = t * (b + 1): an o(log n)-round BCC(1)
  // algorithm would give an o(log n) PLS. Flooding gives t = n, i.e. a
  // Θ(n)-bit scheme — far above the 2 log n of ConnectivityPls, which is
  // exactly why the paper's Ω(log n) needs proof.
  TranscriptPls flood_pls(min_id_flood_factory(), 16, 4);
  ConnectivityPls direct;
  EXPECT_GT(flood_pls.label_bits(16), direct.label_bits(16));
}

// ---- Randomized PLS ([BFP15] phenomenon) --------------------------------------

TEST(RandomizedPls, CompleteOnConnectedGraphs) {
  Rng rng(51);
  const PublicCoins coins(9, 256);
  for (int trial = 0; trial < 15; ++trial) {
    const BccInstance inst = BccInstance::kt1(random_one_cycle(12, rng).to_graph());
    const auto labels = prove_randomized_connectivity(inst);
    const auto res = run_randomized_pls(inst, labels, 4, coins);
    EXPECT_TRUE(res.accepted) << "trial " << trial;
    EXPECT_EQ(res.broadcast_bits, 9u);  // 2c + 1
  }
}

TEST(RandomizedPls, RejectsDisconnectedHonestCheatAtModerateC) {
  Rng rng(52);
  std::size_t rejected = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const BccInstance inst = BccInstance::kt1(random_two_cycle(12, rng).to_graph());
    const auto labels = prove_randomized_connectivity(inst);
    const PublicCoins coins(100 + t, 256);
    if (!run_randomized_pls(inst, labels, 8, coins).accepted) ++rejected;
  }
  // Failure only via an 8-bit root-hash collision: prob ~ 1/256 per trial.
  EXPECT_GE(rejected, static_cast<std::size_t>(trials - 1));
}

TEST(RandomizedPls, FalseAcceptRateTracksTwoToMinusC) {
  // The only collision-escapable cheat: a single lying neighbor copy that
  // grounds an otherwise impossible distance chain. (Double distance-0
  // claims and mismatched roots are caught deterministically or need their
  // own collisions.) Acceptance over seeds ≈ P[pair-hash collision] = 2^-c.
  const auto cs = CycleStructure::from_cycles(8, {{0, 1, 2, 3}, {4, 5, 6, 7}});
  const BccInstance inst = BccInstance::kt1(cs.to_graph());
  auto labels = prove_randomized_connectivity(inst);
  // Rewrite component {4..7} (cycle 4-5-6-7): root 0 with distances hanging
  // off a fabricated ground: 4:(0,1), 5:(0,2), 6:(0,3), 7:(0,2); all copies
  // faithful to those labels EXCEPT 4's copy of one neighbor, which claims
  // (0, 0) to ground 4's distance.
  auto set_pair = [&](VertexId v, std::uint64_t d) { labels[v].own = {0, d}; };
  set_pair(4, 1);
  set_pair(5, 2);
  set_pair(6, 3);
  set_pair(7, 2);
  for (VertexId v = 4; v < 8; ++v) {
    const auto ports = inst.input_ports(v);
    for (std::size_t i = 0; i < ports.size(); ++i) {
      labels[v].copies[i] = labels[inst.wiring().peer(v, ports[i])].own;
    }
  }
  labels[4].copies[0] = {0, 0};  // the single lie
  for (unsigned c : {1u, 2u, 4u}) {
    std::size_t accepted = 0;
    const int seeds = 600;
    for (int s = 0; s < seeds; ++s) {
      const PublicCoins coins(7000 + s, 256);
      if (run_randomized_pls(inst, labels, c, coins).accepted) ++accepted;
    }
    const double rate = static_cast<double>(accepted) / seeds;
    const double expect = std::pow(2.0, -static_cast<double>(c));
    EXPECT_NEAR(rate, expect, expect * 0.6 + 0.02) << "c=" << c;
  }
}

TEST(RandomizedPls, LyingCopiesAreCaught) {
  // Forge one neighbor copy: caught unless the c-bit pair hash collides.
  Rng rng(54);
  const BccInstance inst = BccInstance::kt1(random_one_cycle(10, rng).to_graph());
  auto labels = prove_randomized_connectivity(inst);
  labels[3].copies[0].dist += 5;  // inconsistent claim
  std::size_t caught = 0;
  const int seeds = 50;
  for (int s = 0; s < seeds; ++s) {
    const PublicCoins coins(400 + s, 256);
    if (!run_randomized_pls(inst, labels, 10, coins).accepted) ++caught;
  }
  EXPECT_GE(caught, static_cast<std::size_t>(seeds - 1));
}

TEST(RandomizedPls, VerificationBitsBeatDeterministicForLargeN) {
  // 2c + 1 bits vs 2 ceil(log2 n): the [BFP15]-style exponential gap.
  ConnectivityPls det;
  for (std::size_t n : {64u, 1024u}) {
    EXPECT_LT(2u * 4u + 1u, det.label_bits(n)) << n;
  }
}

TEST(RandomizedPls, InputValidation) {
  Rng rng(55);
  const BccInstance inst = BccInstance::kt1(random_one_cycle(8, rng).to_graph());
  const auto labels = prove_randomized_connectivity(inst);
  const PublicCoins coins(1, 256);
  EXPECT_THROW(run_randomized_pls(inst, labels, 0, coins), std::invalid_argument);
  EXPECT_THROW(run_randomized_pls(inst, labels, 40, coins), std::invalid_argument);
  std::vector<RandomizedLabel> wrong(labels.begin(), labels.end() - 1);
  EXPECT_THROW(run_randomized_pls(inst, wrong, 4, coins), std::invalid_argument);
}

}  // namespace
}  // namespace bcclb

// Cross-cutting property and failure-injection tests: randomized invariants
// that individual module suites do not cover.
#include <gtest/gtest.h>

#include <set>

#include "bcc/algorithms/two_cycle_adversaries.h"
#include "bcc/simulator.h"
#include "common/bigint.h"
#include "common/random.h"
#include "comm/protocol.h"
#include "crossing/crossing.h"
#include "crossing/matching.h"
#include "crossing/ported_instance.h"
#include "graph/components.h"
#include "graph/generators.h"

namespace bcclb {
namespace {

// ---- Crossing walks ----------------------------------------------------------

TEST(CrossingWalk, RandomCrossingSequencesPreserveInstanceInvariants) {
  // Apply a long random sequence of port-preserving crossings; after every
  // step the wiring must stay a valid clique wiring, the input graph
  // 2-regular, and every vertex's local port view must equal the original.
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 10;
    const auto cs = random_one_cycle(n, rng);
    BccInstance inst = random_kt0_instance(cs, rng);
    std::vector<std::vector<Port>> original_views;
    for (VertexId v = 0; v < n; ++v) original_views.push_back(inst.input_ports(v));

    int applied = 0;
    for (int step = 0; step < 40 && applied < 15; ++step) {
      const auto structure = CycleStructure::from_graph(inst.input());
      const auto edges = structure.directed_edges();
      const auto& e1 = edges[rng.next_below(edges.size())];
      const auto& e2 = edges[rng.next_below(edges.size())];
      if (!instance_edges_independent(inst, e1, e2)) continue;
      inst = port_preserving_crossing(inst, e1, e2);
      ++applied;

      EXPECT_TRUE(inst.input().is_regular(2));
      // Wiring validity is enforced by the Wiring constructor; local views:
      for (VertexId v = 0; v < n; ++v) {
        EXPECT_EQ(inst.input_ports(v), original_views[v]) << "step " << step;
      }
    }
    EXPECT_GE(applied, 10);
  }
}

TEST(CrossingWalk, ParityOfCycleCountChangesByOne) {
  // Each crossing either splits one cycle or merges two: the cycle count
  // changes by exactly ±1.
  Rng rng(2);
  BccInstance inst = random_kt0_instance(random_one_cycle(12, rng), rng);
  for (int step = 0; step < 30; ++step) {
    const auto before = CycleStructure::from_graph(inst.input());
    const auto edges = before.directed_edges();
    const auto& e1 = edges[rng.next_below(edges.size())];
    const auto& e2 = edges[rng.next_below(edges.size())];
    if (!instance_edges_independent(inst, e1, e2)) continue;
    inst = port_preserving_crossing(inst, e1, e2);
    const auto after = CycleStructure::from_graph(inst.input());
    const auto diff = static_cast<std::int64_t>(after.num_cycles()) -
                      static_cast<std::int64_t>(before.num_cycles());
    EXPECT_TRUE(diff == 1 || diff == -1) << "step " << step;
  }
}

// ---- Polygamous Hall (Theorem 2.1) as an equivalence --------------------------

TEST(PolygamousHall, MatchingExistsIffExpansionHolds) {
  // On small random bipartite graphs, check by exhaustive subsets:
  // a saturating k-matching exists iff |N(S)| >= k|S| for every S ⊆ L of
  // positive-degree vertices — Theorem 2.1 plus the converse (Hall).
  Rng rng(3);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t left = 2 + rng.next_below(5);   // <= 6
    const std::size_t right = 3 + rng.next_below(10);  // <= 12
    const unsigned k = 1 + static_cast<unsigned>(rng.next_below(3));
    std::vector<std::vector<std::uint32_t>> adj(left);
    for (auto& nbrs : adj) {
      for (std::uint32_t r = 0; r < right; ++r) {
        if (rng.next_bernoulli(0.35)) nbrs.push_back(r);
      }
    }
    // Exhaustive Hall condition over nonempty subsets of positive-degree
    // left vertices.
    std::vector<std::size_t> positive;
    for (std::size_t l = 0; l < left; ++l) {
      if (!adj[l].empty()) positive.push_back(l);
    }
    bool hall = true;
    for (std::uint32_t mask = 1; mask < (1u << positive.size()); ++mask) {
      std::set<std::uint32_t> nbrs;
      std::size_t size = 0;
      for (std::size_t i = 0; i < positive.size(); ++i) {
        if (mask & (1u << i)) {
          ++size;
          nbrs.insert(adj[positive[i]].begin(), adj[positive[i]].end());
        }
      }
      if (nbrs.size() < k * size) hall = false;
    }
    EXPECT_EQ(has_saturating_k_matching(adj, right, k), hall)
        << "trial " << trial << " k=" << k;
  }
}

// ---- Protocol framework --------------------------------------------------------

TEST(ProtocolFramework, MultiRoundPingPong) {
  // Alice streams 4-bit counters; Bob echoes them back incremented; both
  // finish after 5 exchanges with consistent transcripts.
  class Pinger final : public PartyAlgorithm {
   public:
    std::vector<bool> send(unsigned round) override {
      std::vector<bool> bits;
      append_uint(bits, round, 4);
      return bits;
    }
    void receive(unsigned round, const std::vector<bool>& msg) override {
      std::size_t at = 0;
      EXPECT_EQ(read_uint(msg, at, 4), round + 1);
      done_ = round >= 4;
    }
    bool finished() const override { return done_; }

   private:
    bool done_ = false;
  };
  class Ponger final : public PartyAlgorithm {
   public:
    std::vector<bool> send(unsigned) override {
      std::vector<bool> bits;
      append_uint(bits, last_ + 1, 4);
      done_ = last_ >= 4;
      return bits;
    }
    void receive(unsigned, const std::vector<bool>& msg) override {
      std::size_t at = 0;
      last_ = read_uint(msg, at, 4);
    }
    bool finished() const override { return done_; }

   private:
    std::uint64_t last_ = 0;
    bool done_ = false;
  };
  Pinger alice;
  Ponger bob;
  const ProtocolResult res = run_protocol(alice, bob, 10);
  EXPECT_EQ(res.rounds, 5u);
  EXPECT_EQ(res.bits_alice_to_bob, 20u);
  EXPECT_EQ(res.bits_bob_to_alice, 20u);
  // Transcript holds 10 messages separated by '|'.
  EXPECT_EQ(std::count(res.transcript.begin(), res.transcript.end(), '|'), 10);
}

// ---- BigUint fuzz ---------------------------------------------------------------

TEST(BigUintFuzz, AgreesWithNativeArithmeticBelow64Bits) {
  Rng rng(4);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t a = rng.next_u64() >> (1 + rng.next_below(32));
    const std::uint64_t b = rng.next_u64() >> (1 + rng.next_below(32));
    const BigUint ba(a), bb(b);
    EXPECT_EQ((ba + bb).to_u64(), a + b);
    if (a >= b) {
      EXPECT_EQ((ba - bb).to_u64(), a - b);
    }
    const unsigned __int128 prod = static_cast<unsigned __int128>(a) * b;
    const BigUint bprod = ba * bb;
    if (prod <= UINT64_MAX) {
      EXPECT_EQ(bprod.to_u64(), static_cast<std::uint64_t>(prod));
    } else {
      EXPECT_FALSE(bprod.fits_u64());
    }
    const std::uint32_t d = 1 + static_cast<std::uint32_t>(rng.next_below(1000));
    EXPECT_EQ((BigUint(a) * d).divided_by_small(d).to_u64(), a);
  }
}

TEST(BigUintFuzz, AddSubtractRoundTripOnLargeValues) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    BigUint a(1), b(1);
    for (int i = 0; i < 10; ++i) {
      a *= static_cast<std::uint32_t>(1 + rng.next_below(1u << 30));
      b *= static_cast<std::uint32_t>(1 + rng.next_below(1u << 30));
    }
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a * 7u).divided_by_small(7), a);
    EXPECT_EQ(BigUint::from_decimal(a.to_decimal()), a);
  }
}

TEST(BigUintFuzz, ExactDivisionRejectsInexact) {
  EXPECT_THROW(BigUint(7).divided_by_small(2), std::invalid_argument);
  EXPECT_THROW(BigUint(7).divided_by_small(0), std::invalid_argument);
  EXPECT_EQ(BigUint(0).divided_by_small(5), BigUint(0));
}

// ---- Simulator failure injection ------------------------------------------------

TEST(FailureInjection, ThrowingAlgorithmPropagates) {
  class Bomb final : public VertexAlgorithm {
   public:
    void init(const LocalView&) override {}
    Message broadcast(unsigned round) override {
      if (round == 1) throw std::runtime_error("boom");
      return Message::silent();
    }
    void receive(unsigned, std::span<const Message>) override {}
    bool finished() const override { return false; }
    bool decide() const override { return true; }
  };
  Rng rng(6);
  BccSimulator sim(BccInstance::kt1(random_one_cycle(6, rng).to_graph()), 1);
  EXPECT_THROW(sim.run([] { return std::make_unique<Bomb>(); }, 3), std::runtime_error);
}

TEST(FailureInjection, NullFactoryRejected) {
  Rng rng(7);
  BccSimulator sim(BccInstance::kt1(random_one_cycle(6, rng).to_graph()), 1);
  EXPECT_THROW(sim.run([]() -> std::unique_ptr<VertexAlgorithm> { return nullptr; }, 1),
               std::logic_error);
}

TEST(FailureInjection, TruncatedTranscriptQueriesRejected) {
  Rng rng(8);
  BccSimulator sim(BccInstance::kt1(random_one_cycle(6, rng).to_graph()), 1);
  const RunResult r =
      sim.run(two_cycle_adversary_factory(AdversaryKind::kSilent, 2, always_yes_rule()), 2);
  EXPECT_THROW(r.transcript.sent(0, 2), std::invalid_argument);   // round out of range
  EXPECT_THROW(r.transcript.sent(6, 0), std::invalid_argument);   // vertex out of range
}

}  // namespace
}  // namespace bcclb

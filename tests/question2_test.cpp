// Tests for the Question-2 explorer: lossy/randomized Partition protocol
// families and their bits-vs-error frontier.
#include <gtest/gtest.h>

#include "comm/randomized_partition.h"
#include "partition/sampling.h"
#include "common/mathutil.h"

namespace bcclb {
namespace {

TEST(Question2, ExactEndpointsAreErrorFree) {
  Rng rng(1);
  // Full prefix = the exact protocol: zero error.
  const auto full = measure_prefix_protocol(10, 10, 200, rng);
  EXPECT_DOUBLE_EQ(full.join_error, 0.0);
  EXPECT_DOUBLE_EQ(full.decision_error, 0.0);
  // Hash width >= ceil(log2 n) cannot eliminate collisions by pigeonhole
  // alone, but collisions are rare; the error should be small.
  const auto wide = measure_hash_protocol(10, 16, 400, rng);
  EXPECT_LT(wide.join_error, 0.02);
}

TEST(Question2, ZeroBudgetIsBad) {
  Rng rng(2);
  const auto none = measure_prefix_protocol(12, 0, 300, rng);
  EXPECT_EQ(none.bits, 0u);
  // Presuming all singletons is wrong for most uniform partitions.
  EXPECT_GT(none.join_error, 0.5);
}

TEST(Question2, PrefixErrorDecreasesWithBudget) {
  Rng rng(3);
  double prev = 1.1;
  for (std::size_t m : {0u, 4u, 8u, 12u, 16u}) {
    const auto p = measure_prefix_protocol(16, m, 400, rng);
    EXPECT_LE(p.join_error, prev + 0.08) << "m=" << m;  // monotone up to noise
    prev = p.join_error;
  }
  const auto exact = measure_prefix_protocol(16, 16, 200, rng);
  EXPECT_DOUBLE_EQ(exact.join_error, 0.0);
}

TEST(Question2, HashErrorDecreasesWithWidth) {
  Rng rng(4);
  const auto h1 = measure_hash_protocol(12, 1, 400, rng);
  const auto h4 = measure_hash_protocol(12, 4, 400, rng);
  const auto h10 = measure_hash_protocol(12, 10, 400, rng);
  EXPECT_GT(h1.join_error, h4.join_error);
  EXPECT_GT(h4.join_error, h10.join_error);
  // 1-bit hashes collapse ~half the block pairs: decisions lean hard
  // toward "join = 1", a one-sided failure mode.
  EXPECT_GT(h1.decision_error, 0.1);
}

TEST(Question2, BitsAccounting) {
  Rng rng(5);
  EXPECT_EQ(measure_prefix_protocol(16, 8, 10, rng).bits, 8u * 3u);
  EXPECT_EQ(measure_hash_protocol(16, 3, 10, rng).bits, 16u * 3u);
  EXPECT_EQ(exact_protocol_bits(16), 64u);
  EXPECT_EQ(exact_protocol_bits(100), 700u);
}

TEST(Question2, InputValidation) {
  Rng rng(6);
  EXPECT_THROW(measure_prefix_protocol(8, 9, 10, rng), std::invalid_argument);
  EXPECT_THROW(measure_hash_protocol(8, 0, 10, rng), std::invalid_argument);
  EXPECT_THROW(measure_hash_protocol(8, 33, 10, rng), std::invalid_argument);
}

TEST(Question2, HashProtocolErrorIsOneSided) {
  // Hash collisions only over-merge: the approximate join is always a
  // coarsening of the truth, so the decision errs only in one direction
  // (declaring join = 1 when it is not). Verify via direction counting.
  Rng rng(7);
  const std::size_t n = 10;
  std::size_t false_ones = 0, false_zeros = 0;
  for (int trial = 0; trial < 600; ++trial) {
    const SetPartition pa = uniform_partition(n, rng);
    const SetPartition pb = uniform_partition(n, rng);
    const SetPartition truth = pa.join(pb);
    std::vector<std::uint32_t> hash_of_block(pa.num_blocks());
    for (auto& h : hash_of_block) h = static_cast<std::uint32_t>(rng.next_below(4));
    std::vector<std::uint32_t> labels(n);
    for (std::size_t i = 0; i < n; ++i) labels[i] = hash_of_block[pa.rgs()[i]];
    const SetPartition approx = SetPartition::from_labels(labels).join(pb);
    // The approximation is a coarsening of the truth.
    EXPECT_TRUE(truth.refines(approx)) << trial;
    if (approx.is_coarsest() && !truth.is_coarsest()) ++false_ones;
    if (!approx.is_coarsest() && truth.is_coarsest()) ++false_zeros;
  }
  EXPECT_EQ(false_zeros, 0u);
  EXPECT_GT(false_ones, 0u);
}

TEST(Question2, ErrorsVanishAtTheExactBudget) {
  Rng rng(8);
  for (std::size_t n : {8u, 12u}) {
    const auto exact = measure_prefix_protocol(n, n, 300, rng);
    EXPECT_DOUBLE_EQ(exact.decision_error, 0.0) << n;
    EXPECT_DOUBLE_EQ(exact.join_error, 0.0) << n;
    EXPECT_EQ(exact.bits, n * (n <= 8 ? 3u : 4u)) << n;
  }
}

}  // namespace
}  // namespace bcclb

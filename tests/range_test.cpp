// Tests for the range-parameterized congested clique RCC(r, b) and the
// embedded set-disjointness protocol (Becker et al., Section 1.3 context).
#include <gtest/gtest.h>

#include "bcc/algorithms/disjointness.h"
#include "bcc/range_model.h"
#include "common/random.h"
#include "graph/generators.h"

namespace bcclb {
namespace {

DisjointnessInput random_input(std::size_t n, double density, Rng& rng) {
  DisjointnessInput in;
  in.a.resize(n - 2);
  in.b.resize(n - 2);
  for (std::size_t k = 0; k + 2 < n; ++k) {
    in.a[k] = rng.next_bernoulli(density);
    in.b[k] = rng.next_bernoulli(density);
  }
  return in;
}

RangeRunResult run_disjointness(const DisjointnessInput& in, std::size_t n, unsigned r,
                                unsigned b) {
  const BccInstance inst = BccInstance::kt1(Graph(n));
  RangeSimulator sim(inst, r, b);
  return sim.run(disjointness_factory(in, r), DisjointnessAlgorithm::rounds_needed(n, r, b) + 2);
}

TEST(RangeSimulator, EnforcesRangeBudget) {
  // An algorithm that sends two distinct values under r = 1 must be rejected.
  class TwoValues final : public RangeVertexAlgorithm {
   public:
    void init(const LocalView& view) override { n_ = view.n; }
    std::vector<Message> send(unsigned) override {
      std::vector<Message> out(n_ - 1, Message::one_bit(false));
      out[0] = Message::one_bit(true);
      return out;
    }
    void receive(unsigned, std::span<const Message>) override {}
    bool finished() const override { return false; }
    bool decide() const override { return true; }

   private:
    std::size_t n_ = 0;
  };
  const BccInstance inst = BccInstance::kt1(Graph(5));
  RangeSimulator sim(inst, 1, 1);
  EXPECT_THROW(sim.run([] { return std::make_unique<TwoValues>(); }, 1),
               std::invalid_argument);
  RangeSimulator sim2(inst, 2, 1);
  EXPECT_NO_THROW(sim2.run([] { return std::make_unique<TwoValues>(); }, 1));
}

TEST(RangeSimulator, EnforcesBandwidth) {
  class Wide final : public RangeVertexAlgorithm {
   public:
    void init(const LocalView& view) override { n_ = view.n; }
    std::vector<Message> send(unsigned) override {
      return std::vector<Message>(n_ - 1, Message::bits(3, 2));
    }
    void receive(unsigned, std::span<const Message>) override {}
    bool finished() const override { return false; }
    bool decide() const override { return true; }

   private:
    std::size_t n_ = 0;
  };
  const BccInstance inst = BccInstance::kt1(Graph(4));
  RangeSimulator sim(inst, 1, 1);
  EXPECT_THROW(sim.run([] { return std::make_unique<Wide>(); }, 1), std::invalid_argument);
}

TEST(RangeSimulator, ValidatesParameters) {
  const BccInstance inst = BccInstance::kt1(Graph(4));
  EXPECT_THROW(RangeSimulator(inst, 0, 1), std::invalid_argument);
  EXPECT_THROW(RangeSimulator(inst, 4, 1), std::invalid_argument);  // r > n-1
  EXPECT_THROW(RangeSimulator(inst, 1, 0), std::invalid_argument);
}

struct DisjCase {
  std::size_t n;
  unsigned r;
  unsigned b;
};

class DisjointnessSweep : public ::testing::TestWithParam<DisjCase> {};

TEST_P(DisjointnessSweep, CorrectAcrossInputs) {
  const auto [n, r, b] = GetParam();
  Rng rng(n * 100 + r * 10 + b);
  for (int trial = 0; trial < 10; ++trial) {
    const auto in = random_input(n, 0.15, rng);
    const auto res = run_disjointness(in, n, r, b);
    EXPECT_TRUE(res.all_finished);
    EXPECT_EQ(res.decision, sets_disjoint(in)) << "n=" << n << " r=" << r << " b=" << b;
    EXPECT_EQ(res.rounds_executed, DisjointnessAlgorithm::rounds_needed(n, r, b));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, DisjointnessSweep,
    ::testing::Values(DisjCase{10, 1, 1}, DisjCase{10, 4, 1}, DisjCase{10, 9, 1},
                      DisjCase{18, 1, 2}, DisjCase{18, 4, 2}, DisjCase{18, 17, 4},
                      DisjCase{34, 1, 4}, DisjCase{34, 8, 4}));

TEST(Disjointness, EdgeCases) {
  const std::size_t n = 12;
  DisjointnessInput all_full;
  all_full.a.assign(n - 2, true);
  all_full.b.assign(n - 2, true);
  EXPECT_FALSE(run_disjointness(all_full, n, 2, 2).decision);

  DisjointnessInput empty;
  empty.a.assign(n - 2, false);
  empty.b.assign(n - 2, false);
  EXPECT_TRUE(run_disjointness(empty, n, 2, 2).decision);

  // Single shared element at the boundary of the last group.
  DisjointnessInput one;
  one.a.assign(n - 2, false);
  one.b.assign(n - 2, false);
  one.a[n - 3] = one.b[n - 3] = true;
  EXPECT_FALSE(run_disjointness(one, n, 3, 2).decision);
}

TEST(Disjointness, RangeSpeedsUpRounds) {
  // Becker et al.'s phenomenon: rounds ~ ceil(m / (r b)) + 2.
  const std::size_t n = 66;  // m = 64
  const unsigned b = 2;
  unsigned prev = UINT32_MAX;
  for (unsigned r : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const unsigned rounds = DisjointnessAlgorithm::rounds_needed(n, r, b);
    EXPECT_EQ(rounds, 64 / (r * b) + 2);
    EXPECT_LT(rounds, prev);
    prev = rounds;
  }
  // r = 1 is the BCC regime: Θ(n / b) rounds.
  EXPECT_EQ(DisjointnessAlgorithm::rounds_needed(n, 1, b), 34u);
  // r = n - 1 is the CC regime: O(1) rounds.
  EXPECT_EQ(DisjointnessAlgorithm::rounds_needed(n, 65, b), 3u);
}

TEST(Disjointness, BitAccountingCountsDistinctValuesOnce) {
  const std::size_t n = 10;
  Rng rng(3);
  const auto in = random_input(n, 0.3, rng);
  const auto res = run_disjointness(in, n, 8, 2);
  // Phase 1 (1 round at r=8, b=2, m=8: 4 groups): <= 4 distinct messages of
  // 2 bits; phase 2: helpers send <= 2 distinct 1-bit values... total stays
  // far below n^2 * b.
  EXPECT_GT(res.total_bits_sent, 0u);
  EXPECT_LT(res.total_bits_sent, 200u);
}

}  // namespace
}  // namespace bcclb

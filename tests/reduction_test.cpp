// Tests for the Figure 2 reductions and Theorem 4.3.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/reduction.h"
#include "graph/cycle_structure.h"
#include "graph/components.h"
#include "partition/enumeration.h"
#include "partition/pair_partition.h"
#include "partition/sampling.h"

namespace bcclb {
namespace {

SetPartition from_blocks(std::size_t n, std::vector<std::vector<std::uint32_t>> blocks) {
  return SetPartition::from_blocks(n, blocks);
}

TEST(PartitionReduction, PaperLeftFigureExample) {
  // Figure 2 (left): PA = (1,2,3)(4,5,6)(7,8), PB = (1,2,6)(3,4,7)(5,8).
  const auto pa = from_blocks(8, {{0, 1, 2}, {3, 4, 5}, {6, 7}});
  const auto pb = from_blocks(8, {{0, 1, 5}, {2, 3, 6}, {4, 7}});
  const PartitionReduction red = build_partition_reduction(pa, pb);
  EXPECT_EQ(red.graph.num_vertices(), 32u);
  // Spine edges.
  for (std::size_t i = 0; i < 8; ++i) EXPECT_TRUE(red.graph.has_edge(red.l(i), red.r(i)));
  // Alice's first part connects a_1 to l_1, l_2, l_3.
  EXPECT_TRUE(red.graph.has_edge(red.a(0), red.l(0)));
  EXPECT_TRUE(red.graph.has_edge(red.a(0), red.l(1)));
  EXPECT_TRUE(red.graph.has_edge(red.a(0), red.l(2)));
  // Helper a_4..a_8 attach to l* = l_8.
  for (std::size_t k = 3; k < 8; ++k) {
    EXPECT_TRUE(red.graph.has_edge(red.a(k), red.l(7)));
  }
  // Theorem 4.3: components on L = PA ∨ PB. Here the join chains everything:
  // (1,2,3)+(1,2,6) joins {1,2,3,6}; +(4,5,6) joins 4,5; +(3,4,7)... all one.
  EXPECT_EQ(red.components_on_l(), pa.join(pb));
  EXPECT_TRUE(pa.join(pb).is_coarsest());
  EXPECT_TRUE(is_connected(red.graph));
}

TEST(PartitionReduction, DisconnectedWhenJoinIsNotOne) {
  // PA = PB = (1,2)(3,4): join has two parts; graph must be disconnected.
  const auto p = from_blocks(4, {{0, 1}, {2, 3}});
  const PartitionReduction red = build_partition_reduction(p, p);
  EXPECT_FALSE(p.join(p).is_coarsest());
  EXPECT_FALSE(is_connected(red.graph));
  EXPECT_EQ(red.components_on_l(), p);
}

class Theorem43 : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Theorem43, ComponentsOnLEqualJoinExhaustively) {
  const std::size_t n = GetParam();
  const auto parts = all_partitions(n);
  for (const auto& pa : parts) {
    for (const auto& pb : parts) {
      const PartitionReduction red = build_partition_reduction(pa, pb);
      EXPECT_EQ(red.components_on_l(), pa.join(pb))
          << pa.to_string() << " vs " << pb.to_string();
      EXPECT_EQ(is_connected(red.graph), pa.join(pb).is_coarsest());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallGrounds, Theorem43, ::testing::Values(2, 3, 4));

TEST(PartitionReduction, RandomLargeSweep) {
  Rng rng(13);
  for (int trial = 0; trial < 25; ++trial) {
    const SetPartition pa = uniform_partition(20, rng);
    const SetPartition pb = uniform_partition(20, rng);
    const PartitionReduction red = build_partition_reduction(pa, pb);
    EXPECT_EQ(red.components_on_l(), pa.join(pb));
    // Rows R and L see the same partition (Theorem 4.3 statement).
    const auto labels = component_labels(red.graph);
    std::vector<std::uint32_t> on_r(20);
    for (std::size_t i = 0; i < 20; ++i) on_r[i] = labels[red.r(i)];
    EXPECT_EQ(SetPartition::from_labels(on_r), pa.join(pb));
  }
}

TEST(TwoPartitionReduction, PaperRightFigureExample) {
  // Figure 2 (right): PA = (1,2)(3,4)(5,6)(7,8), PB = (1,3)(2,4)(5,7)(6,8).
  const auto pa = from_blocks(8, {{0, 1}, {2, 3}, {4, 5}, {6, 7}});
  const auto pb = from_blocks(8, {{0, 2}, {1, 3}, {4, 6}, {5, 7}});
  const TwoPartitionReduction red = build_two_partition_reduction(pa, pb);
  EXPECT_EQ(red.graph.num_vertices(), 16u);
  EXPECT_TRUE(red.graph.is_regular(2));
  EXPECT_GE(red.shortest_cycle(), 4u);
  // Join: {1,2,3,4} and {5,6,7,8} — two components, disconnected MultiCycle.
  EXPECT_EQ(red.components_on_l(), pa.join(pb));
  EXPECT_FALSE(is_connected(red.graph));
  EXPECT_EQ(num_components(red.graph), 2u);
}

TEST(TwoPartitionReduction, ExhaustiveTheorem43OnMatchings) {
  const auto matchings = all_perfect_matchings(6);
  for (const auto& pa : matchings) {
    for (const auto& pb : matchings) {
      const TwoPartitionReduction red = build_two_partition_reduction(pa, pb);
      EXPECT_TRUE(red.graph.is_regular(2));
      EXPECT_GE(red.shortest_cycle(), 4u);
      EXPECT_EQ(red.components_on_l(), pa.join(pb));
      EXPECT_EQ(is_connected(red.graph), pa.join(pb).is_coarsest());
    }
  }
}

TEST(TwoPartitionReduction, EveryCycleHasEvenLengthAtLeastFour) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const SetPartition pa = random_perfect_matching(12, rng);
    const SetPartition pb = random_perfect_matching(12, rng);
    const TwoPartitionReduction red = build_two_partition_reduction(pa, pb);
    const auto cs = CycleStructure::from_graph(red.graph);
    for (const auto& cycle : cs.cycles()) {
      EXPECT_GE(cycle.size(), 4u);
      EXPECT_EQ(cycle.size() % 2, 0u);  // alternates L/R spine and matching edges
    }
  }
}

TEST(TwoPartitionReduction, RejectsNonMatchingInputs) {
  EXPECT_THROW(
      build_two_partition_reduction(SetPartition::coarsest(4), SetPartition::coarsest(4)),
      std::invalid_argument);
}

TEST(PartitionReduction, MismatchedGroundSetsRejected) {
  EXPECT_THROW(
      build_partition_reduction(SetPartition::coarsest(3), SetPartition::coarsest(4)),
      std::invalid_argument);
}

}  // namespace
}  // namespace bcclb

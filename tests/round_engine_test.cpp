// RoundEngine edge cases: exception safety on bandwidth violations, round
// limits with unfinished vertices, buffer reuse across heterogeneous runs,
// and the n = 2 minimal instance.
#include <gtest/gtest.h>

#include <memory>

#include "bcc/algorithms/boruvka.h"
#include "bcc/algorithms/min_id_flood.h"
#include "bcc/round_engine.h"
#include "common/random.h"
#include "graph/generators.h"

namespace bcclb {
namespace {

// Broadcasts 1 bit in round 0, then `width` bits from round 1 on — lets a
// test trip the bandwidth check mid-run, after the engine has already staged
// a full round. Never finishes on its own.
class WidthRampAlgorithm final : public VertexAlgorithm {
 public:
  explicit WidthRampAlgorithm(unsigned width) : width_(width) {}
  void init(const LocalView&) override {}
  Message broadcast(unsigned round) override {
    return round == 0 ? Message::one_bit(true) : Message::bits((1u << width_) - 1, width_);
  }
  void receive(unsigned, std::span<const Message>) override {}
  bool finished() const override { return false; }
  bool decide() const override { return true; }

 private:
  unsigned width_;
};

AlgorithmFactory width_ramp_factory(unsigned width) {
  return [width] { return std::make_unique<WidthRampAlgorithm>(width); };
}

// Broadcasts its lowest ID bit forever; finished() is always false, so runs
// only stop at the round limit.
class NeverFinishesAlgorithm final : public VertexAlgorithm {
 public:
  void init(const LocalView& view) override { bit_ = (view.id & 1) != 0; }
  Message broadcast(unsigned) override { return Message::one_bit(bit_); }
  void receive(unsigned, std::span<const Message>) override {}
  bool finished() const override { return false; }
  bool decide() const override { return false; }

 private:
  bool bit_ = false;
};

AlgorithmFactory never_finishes_factory() {
  return [] { return std::make_unique<NeverFinishesAlgorithm>(); };
}

TEST(RoundEngine, BandwidthViolationThrowsAndEngineStaysUsable) {
  Rng rng(7);
  const BccInstance instance = BccInstance::kt1(random_gnp(8, 0.5, rng));

  RoundEngine engine;
  // Round 0 fits in b = 1; round 1 broadcasts 3 bits and must throw.
  EXPECT_THROW(engine.run(instance, 1, width_ramp_factory(3), 10), std::invalid_argument);
  EXPECT_FALSE(engine.running());

  // The engine must be immediately reusable and produce results identical to
  // a fresh engine's: the throw may not leave stale rounds, vertices or
  // counters behind in the reused buffers.
  RoundEngine fresh;
  const unsigned cap = MinIdFloodAlgorithm::rounds_needed(8);
  const RunResult reused = engine.run(instance, 3, min_id_flood_factory(), cap);
  const RunResult baseline = fresh.run(instance, 3, min_id_flood_factory(), cap);
  EXPECT_EQ(reused.rounds_executed, baseline.rounds_executed);
  EXPECT_EQ(reused.decision, baseline.decision);
  EXPECT_EQ(reused.total_bits_broadcast, baseline.total_bits_broadcast);
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_EQ(reused.transcript.sent_string(v), baseline.transcript.sent_string(v));
  }
}

TEST(RoundEngine, RepeatedViolationsNeverWedgeTheEngine) {
  Rng rng(11);
  const BccInstance instance = BccInstance::kt1(random_gnp(6, 0.5, rng));
  RoundEngine engine;
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(engine.run(instance, 1, width_ramp_factory(2), 5), std::invalid_argument);
    EXPECT_FALSE(engine.running());
  }
  const RunResult ok =
      engine.run(instance, 3, min_id_flood_factory(), MinIdFloodAlgorithm::rounds_needed(6));
  EXPECT_TRUE(ok.all_finished);
}

TEST(RoundEngine, RoundLimitWithUnfinishedVertices) {
  Rng rng(3);
  const BccInstance instance = BccInstance::kt1(random_gnp(5, 0.6, rng));
  RoundEngine engine;
  const RunResult r = engine.run(instance, 1, never_finishes_factory(), 7);
  EXPECT_EQ(r.rounds_executed, 7u);
  EXPECT_FALSE(r.all_finished);
  EXPECT_FALSE(r.decision);
  // The transcript is sized to the rounds actually executed — exactly 7.
  EXPECT_EQ(r.transcript.num_rounds(), 7u);
  EXPECT_EQ(r.transcript.num_vertices(), 5u);
  // Every vertex broadcast one bit per round.
  EXPECT_EQ(r.total_bits_broadcast, 7u * 5u);
  EXPECT_EQ(r.stats.rounds, 7u);
  EXPECT_EQ(r.stats.total_bits, r.total_bits_broadcast);
}

TEST(RoundEngine, ZeroRoundLimitExecutesNothing) {
  Rng rng(5);
  const BccInstance instance = BccInstance::kt1(random_gnp(4, 0.5, rng));
  RoundEngine engine;
  const RunResult r = engine.run(instance, 1, never_finishes_factory(), 0);
  EXPECT_EQ(r.rounds_executed, 0u);
  EXPECT_EQ(r.transcript.num_rounds(), 0u);
  EXPECT_EQ(r.total_bits_broadcast, 0u);
}

TEST(RoundEngine, MinimalTwoVertexInstance) {
  const BccInstance instance = BccInstance::kt1(path_graph(2));
  RoundEngine engine;
  const RunResult r =
      engine.run(instance, 1, min_id_flood_factory(), MinIdFloodAlgorithm::rounds_needed(2));
  EXPECT_TRUE(r.all_finished);
  EXPECT_TRUE(r.decision);  // a single edge is connected
}

TEST(RoundEngine, BuffersGrowAcrossRunsButRemainCorrect) {
  // Alternate between a small and a larger instance on one engine; results
  // must match fresh-engine runs each time (buffers are reused, never stale).
  Rng rng(19);
  const BccInstance small = BccInstance::kt1(random_gnp(4, 0.7, rng));
  const BccInstance large = BccInstance::kt1(random_gnp(12, 0.4, rng));
  RoundEngine engine;
  for (int iter = 0; iter < 2; ++iter) {
    for (const BccInstance* inst : {&small, &large}) {
      const std::size_t n = inst->num_vertices();
      const unsigned cap = BoruvkaAlgorithm::max_rounds(n, 2);
      RoundEngine fresh;
      const RunResult a = engine.run(*inst, 2, boruvka_factory(), cap);
      const RunResult b = fresh.run(*inst, 2, boruvka_factory(), cap);
      EXPECT_EQ(a.decision, b.decision);
      EXPECT_EQ(a.rounds_executed, b.rounds_executed);
      for (VertexId v = 0; v < n; ++v) {
        EXPECT_EQ(a.transcript.sent_string(v), b.transcript.sent_string(v));
      }
    }
  }
  EXPECT_GT(engine.buffer_bytes(), 0u);
}

TEST(RoundEngine, ReserveIsIdempotentWithRun) {
  Rng rng(23);
  const BccInstance instance = BccInstance::kt1(random_gnp(9, 0.5, rng));
  RoundEngine reserved;
  reserved.reserve(9, 16);
  RoundEngine lazy;
  const unsigned cap = MinIdFloodAlgorithm::rounds_needed(9);
  const RunResult a = reserved.run(instance, 4, min_id_flood_factory(), cap);
  const RunResult b = lazy.run(instance, 4, min_id_flood_factory(), cap);
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.total_bits_broadcast, b.total_bits_broadcast);
  for (VertexId v = 0; v < 9; ++v) {
    EXPECT_EQ(a.transcript.sent_string(v), b.transcript.sent_string(v));
  }
}

}  // namespace
}  // namespace bcclb

// bccr shard router: rendezvous hashing, the per-backend circuit breaker,
// failover, hedging, digest-verified relays, and the typed all-shards-dead
// answer.
//
// End-to-end tests run real ServeServer backends on ephemeral TCP ports
// behind a real RouterServer, driven through ServeClient — the same path
// `bcclb serve` / `bcclb route` / `bcclb loadgen --router` take. Circuit
// state-machine tests drive BackendPool with explicit synthetic clocks, so
// no transition depends on wall-clock sleeps. Active probing is disabled
// (probe_interval_ms = 0) except where a test is about probing, so health
// transitions happen exactly when the test performs them.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bcc/checkpoint.h"
#include "common/errors.h"
#include "serve/backend_pool.h"
#include "serve/client.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace bcclb {
namespace {

// ---- helpers ---------------------------------------------------------------

Request classify_request(std::uint32_t n, std::uint64_t packed) {
  Request r;
  r.type = RequestType::kClassify;
  r.n = n;
  r.packed = packed;
  return r;
}

Request indist_request(std::uint32_t n) {
  Request r;
  r.type = RequestType::kIndistGraph;
  r.n = n;
  return r;
}

Request stats_request() {
  Request r;
  r.type = RequestType::kStats;
  return r;
}

// Packed word of the canonical single cycle 0 -> 1 -> ... -> n-1 -> 0.
std::uint64_t ring_word(std::uint32_t n) {
  std::uint64_t packed = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    packed |= static_cast<std::uint64_t>((v + 1) % n) << (4 * v);
  }
  return packed;
}

// A small bag of distinct real requests to pick routing victims from.
std::vector<Request> candidate_requests() {
  std::vector<Request> out;
  for (std::uint32_t n = 4; n <= 12; ++n) out.push_back(classify_request(n, ring_word(n)));
  for (std::uint32_t n = kMinIndistN; n <= kMaxIndistN; ++n) out.push_back(indist_request(n));
  return out;
}

// Binds and runs a real bccd on an ephemeral TCP port; drains on stop().
class RunningBackend {
 public:
  explicit RunningBackend(ServeConfig config = {}) : server_(std::move(config)) {
    server_.bind();
    thread_ = std::thread([this] { stats_ = server_.run(); });
  }
  ~RunningBackend() { stop(); }
  std::uint16_t port() const { return server_.tcp_port(); }
  ServeStats stop() {
    if (thread_.joinable()) {
      server_.begin_drain();
      thread_.join();
    }
    return stats_;
  }

 private:
  ServeServer server_;
  std::thread thread_;
  ServeStats stats_;
};

BackendEndpoint tcp_backend(std::uint16_t port) {
  BackendEndpoint ep;
  ep.tcp_port = port;
  return ep;
}

// Binds and runs a RouterServer over the given backends on an ephemeral TCP
// port. Probing is off by default so tests control every health transition.
class RunningRouter {
 public:
  explicit RunningRouter(RouterConfig config) : router_(std::move(config)) {
    router_.bind();
    thread_ = std::thread([this] { stats_ = router_.run(); });
  }
  ~RunningRouter() { stop(); }
  RouterServer& router() { return router_; }
  ServeClient connect() { return ServeClient::connect_tcp(router_.tcp_port()); }
  RouterStats stop() {
    if (thread_.joinable()) {
      router_.begin_drain();
      thread_.join();
    }
    return stats_;
  }

 private:
  RouterServer router_;
  std::thread thread_;
  RouterStats stats_;
};

RouterConfig router_config(std::vector<std::uint16_t> backend_ports) {
  RouterConfig config;
  for (const std::uint16_t port : backend_ports) config.backends.push_back(tcp_backend(port));
  config.health.probe_interval_ms = 0;  // tests drive health explicitly
  config.health.fail_threshold = 1;
  config.attempt_deadline_ms = 5000;
  return config;
}

// A request whose rendezvous rank puts `backend` first — the deterministic
// victim for failover/hedge scenarios.
Request request_owned_by(const BackendPool& pool, std::size_t backend) {
  for (const Request& request : candidate_requests()) {
    if (pool.rank(request_cache_key(request))[0] == backend) return request;
  }
  ADD_FAILURE() << "no candidate request hashes to backend " << backend;
  return stats_request();
}

// ---- endpoint parsing ------------------------------------------------------

TEST(BackendEndpoint, ParsesUnixAndTcpForms) {
  const auto unix_ep = parse_backend_endpoint("unix:/tmp/bccd.sock");
  ASSERT_TRUE(unix_ep.has_value());
  EXPECT_EQ(unix_ep->unix_path, "/tmp/bccd.sock");
  EXPECT_EQ(unix_ep->to_string(), "unix:/tmp/bccd.sock");

  const auto tcp_ep = parse_backend_endpoint("tcp:4321");
  ASSERT_TRUE(tcp_ep.has_value());
  EXPECT_EQ(tcp_ep->tcp_port, 4321);
  EXPECT_EQ(tcp_ep->to_string(), "tcp:4321");
}

TEST(BackendEndpoint, RejectsMalformedSpecs) {
  for (const char* bad : {"", "unix:", "tcp:", "tcp:0", "tcp:65536", "tcp:12x", "tcp:-1",
                          "http://x", "4321", "/tmp/plain.sock"}) {
    EXPECT_FALSE(parse_backend_endpoint(bad).has_value()) << bad;
  }
}

// ---- rendezvous hashing ----------------------------------------------------

TEST(Rendezvous, RankIsADeterministicPermutation) {
  BackendPool pool({tcp_backend(1), tcp_backend(2), tcp_backend(3), tcp_backend(4)}, {});
  for (std::uint64_t key = 1; key <= 64; ++key) {
    const std::vector<std::size_t> order = pool.rank(key);
    EXPECT_EQ(order, pool.rank(key));  // pure in the key
    EXPECT_EQ(std::set<std::size_t>(order.begin(), order.end()),
              (std::set<std::size_t>{0, 1, 2, 3}));
    // The ranking really is by descending score.
    for (std::size_t i = 1; i < order.size(); ++i) {
      EXPECT_GE(rendezvous_score(key, order[i - 1]), rendezvous_score(key, order[i]));
    }
  }
}

TEST(Rendezvous, OwnershipIsRoughlyBalanced) {
  BackendPool pool(std::vector<BackendEndpoint>(5, tcp_backend(1)), {});
  std::vector<int> owned(5, 0);
  const int kKeys = 5000;
  for (int k = 0; k < kKeys; ++k) {
    ++owned[pool.rank(0x9e3779b97f4a7c15ULL * (k + 1))[0]];
  }
  for (int count : owned) {
    // Expected 1000 per backend; a factor-2 band is far outside noise for a
    // working mixer and far inside it for a broken one.
    EXPECT_GT(count, 500);
    EXPECT_LT(count, 2000);
  }
}

TEST(Rendezvous, RemovingABackendOnlyRemapsItsOwnKeys) {
  BackendPool pool({tcp_backend(1), tcp_backend(2), tcp_backend(3), tcp_backend(4)}, {});
  for (std::uint64_t key = 1; key <= 256; ++key) {
    const std::vector<std::size_t> order = pool.rank(key);
    const std::size_t owner = order[0];
    // Keys not owned by the "removed" backend keep their owner; the removed
    // backend's keys fall to their second choice — the failover invariant
    // that preserves the rest of the fleet's cache locality.
    for (std::size_t removed = 0; removed < 4; ++removed) {
      std::size_t surviving_owner = order[0] == removed ? order[1] : order[0];
      if (removed != owner) EXPECT_EQ(surviving_owner, owner);
    }
  }
}

// ---- circuit breaker (synthetic clock, no I/O) ------------------------------

BackendPolicy breaker_policy(unsigned fail_threshold = 3) {
  BackendPolicy policy;
  policy.fail_threshold = fail_threshold;
  policy.open_cooldown_ms = 50;
  policy.probe_interval_ms = 0;
  return policy;
}

TEST(CircuitBreaker, OpensAfterThresholdThenHalfOpensAndReadmits) {
  BackendPool pool({tcp_backend(1), tcp_backend(2)}, breaker_policy(3));
  const std::uint64_t t0 = 1'000'000'000ULL;

  pool.record_failure(0, t0);
  pool.record_failure(0, t0);
  EXPECT_EQ(pool.state(0), BackendState::kClosed);  // under threshold
  EXPECT_TRUE(pool.admits(0));

  pool.record_failure(0, t0);
  EXPECT_EQ(pool.state(0), BackendState::kOpen);
  EXPECT_FALSE(pool.admits(0));
  EXPECT_TRUE(pool.admits(1));  // the breaker is per-backend

  // Cooldown not yet elapsed: stays open.
  EXPECT_FALSE(pool.tick(0, t0 + 49'000'000ULL));
  EXPECT_EQ(pool.state(0), BackendState::kOpen);

  // Cooldown elapsed: probation, and probation admits traffic.
  EXPECT_TRUE(pool.tick(0, t0 + 50'000'000ULL));
  EXPECT_EQ(pool.state(0), BackendState::kHalfOpen);
  EXPECT_TRUE(pool.admits(0));

  pool.record_success(0);
  EXPECT_EQ(pool.state(0), BackendState::kClosed);

  const std::vector<BackendSnapshot> snapshot = pool.snapshot();
  EXPECT_EQ(snapshot[0].counters.circuit_opened, 1u);
  EXPECT_EQ(snapshot[0].counters.circuit_half_open, 1u);
  EXPECT_EQ(snapshot[0].counters.circuit_closed, 1u);
  EXPECT_EQ(snapshot[1].counters.circuit_opened, 0u);
}

TEST(CircuitBreaker, HalfOpenFailureReopensImmediately) {
  BackendPool pool({tcp_backend(1)}, breaker_policy(2));
  const std::uint64_t t0 = 1'000'000'000ULL;
  pool.record_failure(0, t0);
  pool.record_failure(0, t0);
  ASSERT_EQ(pool.state(0), BackendState::kOpen);
  ASSERT_TRUE(pool.tick(0, t0 + 50'000'000ULL));

  // One failure in probation is enough — no second threshold to climb.
  pool.record_failure(0, t0 + 51'000'000ULL);
  EXPECT_EQ(pool.state(0), BackendState::kOpen);
  EXPECT_EQ(pool.snapshot()[0].counters.circuit_opened, 2u);

  // And the cooldown restarts from the re-open.
  EXPECT_FALSE(pool.tick(0, t0 + 52'000'000ULL));
  EXPECT_TRUE(pool.tick(0, t0 + 101'000'000ULL));
  pool.record_success(0);
  EXPECT_EQ(pool.state(0), BackendState::kClosed);
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveFailureCount) {
  BackendPool pool({tcp_backend(1)}, breaker_policy(3));
  const std::uint64_t t0 = 1'000'000'000ULL;
  pool.record_failure(0, t0);
  pool.record_failure(0, t0);
  pool.record_success(0);  // sporadic failures never accumulate
  pool.record_failure(0, t0);
  pool.record_failure(0, t0);
  EXPECT_EQ(pool.state(0), BackendState::kClosed);
  pool.record_failure(0, t0);
  EXPECT_EQ(pool.state(0), BackendState::kOpen);
}

// ---- probing against a real backend ----------------------------------------

TEST(BackendPool, ProbeDiscoversDeathAndRecovery) {
  const std::string path =
      "/tmp/bcclb_router_probe_" + std::to_string(::getpid()) + ".sock";
  ServeConfig backend_config;
  backend_config.unix_path = path;
  auto backend = std::make_unique<RunningBackend>(backend_config);

  BackendEndpoint ep;
  ep.unix_path = path;
  BackendPolicy policy = breaker_policy(2);
  policy.probe_deadline_ms = 2000;
  BackendPool pool({ep}, policy);

  std::uint64_t now = 1'000'000'000ULL;
  pool.probe_once(now);
  EXPECT_EQ(pool.state(0), BackendState::kClosed);
  EXPECT_GE(pool.snapshot()[0].counters.probes_ok, 1u);

  // Kill the daemon; two failed probes open the circuit.
  backend->stop();
  backend.reset();
  pool.probe_once(now += 1'000'000ULL);
  pool.probe_once(now += 1'000'000ULL);
  EXPECT_EQ(pool.state(0), BackendState::kOpen);

  // While open, probes do not dial at all (the count stays put).
  const std::uint64_t probes_before = pool.snapshot()[0].counters.probes_failed;
  pool.probe_once(now += 1'000'000ULL);
  EXPECT_EQ(pool.snapshot()[0].counters.probes_failed, probes_before);

  // Restart on the same socket path; after the cooldown the next probe pass
  // half-opens and immediately re-admits.
  backend = std::make_unique<RunningBackend>(backend_config);
  pool.probe_once(now += policy.open_cooldown_ms * 1'000'000ULL);
  EXPECT_EQ(pool.state(0), BackendState::kClosed);
  EXPECT_GE(pool.snapshot()[0].counters.circuit_closed, 1u);
}

// ---- routing end-to-end -----------------------------------------------------

TEST(Router, RelaysByteIdenticalArtifacts) {
  RunningBackend b0, b1;
  RunningRouter router(router_config({b0.port(), b1.port()}));

  const Request request = classify_request(6, ring_word(6));
  ServeClient direct = ServeClient::connect_tcp(b0.port());
  const Response want = direct.request(request);
  ASSERT_EQ(want.status, StatusCode::kOk);

  ServeClient client = router.connect();
  const Response got = client.request(request);
  ASSERT_EQ(got.status, StatusCode::kOk);
  EXPECT_EQ(got.digest, want.digest);
  EXPECT_EQ(got.artifact, want.artifact);  // byte identity through the router
  EXPECT_EQ(fnv1a(got.artifact), got.digest);

  const RouterStats stats = router.stop();
  EXPECT_EQ(stats.requests_routed, 1u);
  EXPECT_EQ(stats.responses_ok, 1u);
  EXPECT_EQ(stats.digest_rejected, 0u);
}

TEST(Router, StatsProbeAnswersInlineWithRouterCounters) {
  RunningBackend b0;
  RunningRouter router(router_config({b0.port()}));
  ServeClient client = router.connect();
  client.request(classify_request(5, ring_word(5)));

  const Response stats = client.request(stats_request());
  ASSERT_EQ(stats.status, StatusCode::kOk);
  EXPECT_EQ(fnv1a(stats.artifact), stats.digest);
  EXPECT_EQ(stats.artifact.rfind("bccr stats\n", 0), 0u);  // the router's own artifact
  EXPECT_NE(stats.artifact.find("requests routed = 1"), std::string::npos);
  EXPECT_NE(stats.artifact.find("backend 0 tcp:" + std::to_string(b0.port())),
            std::string::npos);
}

TEST(Router, FailsOverWhenThePrimaryShardDies) {
  RunningBackend b0, b1;
  RunningRouter router(router_config({b0.port(), b1.port()}));
  const Request victim = request_owned_by(router.router().pool(), 0);

  b0.stop();  // rank-0 shard for `victim` is now gone

  ServeClient client = router.connect();
  const Response response = client.request(victim);
  ASSERT_EQ(response.status, StatusCode::kOk);  // served by the surviving shard
  EXPECT_EQ(fnv1a(response.artifact), response.digest);

  const RouterStats stats = router.stop();
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_EQ(stats.no_backend, 0u);
  // fail_threshold is 1 in router_config: the single failed attempt opened
  // the dead shard's circuit.
  EXPECT_EQ(stats.backends[0].state, BackendState::kOpen);
  EXPECT_GE(stats.backends[0].counters.circuit_opened, 1u);
}

TEST(Router, AllShardsDeadYieldsTypedNoBackendNotAHang) {
  RunningBackend b0;
  RouterConfig config = router_config({b0.port()});
  config.attempt_deadline_ms = 1000;
  RunningRouter router(config);
  b0.stop();

  ServeClient client = router.connect();
  const auto t0 = std::chrono::steady_clock::now();
  const Response response = client.request(classify_request(6, ring_word(6)));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(response.status, StatusCode::kNoBackend);
  EXPECT_NE(response.artifact.find("no live backend"), std::string::npos);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 5000);

  // The second request finds the circuit already open: no dial, instant
  // typed answer.
  const auto t1 = std::chrono::steady_clock::now();
  const Response again = client.request(classify_request(7, ring_word(7)));
  const auto fast = std::chrono::steady_clock::now() - t1;
  EXPECT_EQ(again.status, StatusCode::kNoBackend);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(fast).count(), 500);

  const RouterStats stats = router.stop();
  EXPECT_GE(stats.no_backend, 2u);
}

TEST(Router, RetryNoBackendConsumesTheRetryBudget) {
  RunningBackend b0;
  RouterConfig config = router_config({b0.port()});
  config.attempt_deadline_ms = 500;
  RunningRouter router(config);
  b0.stop();

  ServeClient client = router.connect();
  ClientRetryPolicy policy;
  policy.max_retries = 2;
  policy.deadline_ms = 3000;
  policy.backoff_base_ms = 1;
  policy.backoff_cap_ms = 2;
  policy.retry_no_backend = true;
  const RetryOutcome outcome = client.request_with_retry(classify_request(6, ring_word(6)),
                                                         policy);
  EXPECT_EQ(outcome.response.status, StatusCode::kNoBackend);
  EXPECT_EQ(outcome.retries, 2u);  // the budget was spent on NoBackend answers

  // Without opting in, NoBackend is terminal: no retries burned.
  ClientRetryPolicy no_opt_in = policy;
  no_opt_in.retry_no_backend = false;
  const RetryOutcome terminal =
      client.request_with_retry(classify_request(7, ring_word(7)), no_opt_in);
  EXPECT_EQ(terminal.response.status, StatusCode::kNoBackend);
  EXPECT_EQ(terminal.retries, 0u);
}

TEST(Router, CorruptArtifactsAreRejectedByDigestAndFailedOver) {
  ServeConfig corrupt_config;
  corrupt_config.faults.seed = 11;
  corrupt_config.faults.corrupt_response_every = 1;  // every artifact flips a byte
  RunningBackend corrupt(corrupt_config);
  RunningBackend clean;
  RouterConfig config = router_config({corrupt.port(), clean.port()});
  config.health.fail_threshold = 100;  // keep the corrupt shard admitted
  RunningRouter router(config);
  const Request victim = request_owned_by(router.router().pool(), 0);

  ServeClient client = router.connect();
  const Response response = client.request(victim);
  ASSERT_EQ(response.status, StatusCode::kOk);
  EXPECT_EQ(fnv1a(response.artifact), response.digest);  // the clean shard's bytes

  const RouterStats stats = router.stop();
  EXPECT_GE(stats.digest_rejected, 1u);
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_EQ(stats.responses_ok, 1u);
}

TEST(Router, HedgeBeatsAStalledPrimary) {
  ServeConfig stalled_config;
  stalled_config.faults.stall_every = 1;
  stalled_config.faults.stall_ms = 3000;  // every response sleeps 3 s
  RunningBackend stalled(stalled_config);
  RunningBackend fast;
  RouterConfig config = router_config({stalled.port(), fast.port()});
  config.health.fail_threshold = 100;
  config.hedge_delay_ms = 50;
  config.attempt_deadline_ms = 10000;
  RunningRouter router(config);
  const Request victim = request_owned_by(router.router().pool(), 0);

  {
    ServeClient client = router.connect();
    const auto t0 = std::chrono::steady_clock::now();
    const Response response = client.request(victim);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    ASSERT_EQ(response.status, StatusCode::kOk);
    EXPECT_EQ(fnv1a(response.artifact), response.digest);
    // The hedge answered way before the 3 s stall released the primary.
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 2500);
  }  // closing the connection joins the abandoned primary attempt

  const RouterStats stats = router.stop();
  EXPECT_GE(stats.hedges_launched, 1u);
  EXPECT_GE(stats.hedges_won, 1u);
}

TEST(Router, DrainAnswersTypedDrainingThenExits) {
  RunningBackend b0;
  RunningRouter router(router_config({b0.port()}));
  ServeClient client = router.connect();
  const Response before = client.request(classify_request(6, ring_word(6)));
  ASSERT_EQ(before.status, StatusCode::kOk);

  router.router().begin_drain();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const Response during = client.request(classify_request(7, ring_word(7)));
  EXPECT_EQ(during.status, StatusCode::kDraining);

  const RouterStats stats = router.stop();
  EXPECT_GE(stats.draining_rejected, 1u);
}

}  // namespace
}  // namespace bcclb

// The strategy-search subsystem: genome, fitness oracle, drivers, campaign.
//
// The load-bearing properties, each pinned here:
//   - a run is a pure function of its SearchConfig: bit-identical artifacts
//     across BCCLB_THREADS-style worker widths and across repeats;
//   - the seeded drivers rediscover the exhaustive optimum on a space small
//     enough to enumerate (the E17 agreement check);
//   - the campaign checkpoints resume bit-identically after a stop at any
//     batch boundary (the SIGKILL story, minus the signal);
//   - the anomaly policy: a score below the candidate's own Theorem 3.1
//     certificate floor is a VerifierAnomalyError, never a "discovery".
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "bcc/batch_runner.h"
#include "bcc/checkpoint.h"
#include "common/errors.h"
#include "core/decision_optimizer.h"
#include "bcc/algorithms/two_cycle_adversaries.h"
#include "search/campaign.h"
#include "search/engine.h"
#include "search/fitness.h"
#include "search/strategy.h"

namespace bcclb {
namespace {

std::string test_dir() {
  const ::testing::TestInfo* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir() + "bcclb_search_" + info->test_suite_name() + "_" +
                    info->name();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string raw_read(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

StrategyTable silent_always_yes(std::uint32_t n, std::uint32_t rounds, std::uint32_t buckets) {
  StrategyTable table;
  table.n = n;
  table.rounds = rounds;
  table.buckets = buckets;
  table.broadcast.assign(static_cast<std::size_t>(rounds) * buckets, kActSilent);
  table.vote_no.assign(buckets, 0);
  return table;
}

TEST(Strategy, SerializationIsCanonicalAndDigestsAreContentAddresses) {
  Rng rng(7);
  const StrategyTable a = random_strategy(6, 2, 4, rng);
  validate_strategy(a);
  const std::string text = serialize_strategy(a);
  EXPECT_EQ(text, serialize_strategy(a));  // deterministic
  EXPECT_EQ(strategy_digest(a), fnv1a(text));
  EXPECT_NE(text.find("bcclb-strategy-v1"), std::string::npos);
  EXPECT_NE(text.find("n 6 rounds 2 buckets 4"), std::string::npos);

  // Same seed, same table; the digest is the identity.
  Rng rng2(7);
  EXPECT_EQ(random_strategy(6, 2, 4, rng2), a);
  // A different seed diverges (for this pair — not a universal guarantee,
  // but a regression trip-wire for the Rng plumbing).
  Rng rng3(8);
  EXPECT_NE(strategy_digest(random_strategy(6, 2, 4, rng3)), strategy_digest(a));
}

TEST(Strategy, ValidateRejectsShapeAndValueViolations) {
  StrategyTable bad = silent_always_yes(6, 1, 2);
  bad.broadcast.pop_back();
  EXPECT_THROW(validate_strategy(bad), std::invalid_argument);

  bad = silent_always_yes(6, 1, 2);
  bad.broadcast[0] = 3;  // not a legal action
  EXPECT_THROW(validate_strategy(bad), std::invalid_argument);

  bad = silent_always_yes(6, 1, 2);
  bad.vote_no[1] = 2;  // votes are 0/1
  EXPECT_THROW(validate_strategy(bad), std::invalid_argument);
}

TEST(Strategy, MutationAndCrossoverPreserveValidity) {
  Rng rng(2019);
  const StrategyTable a = random_strategy(6, 2, 4, rng);
  const StrategyTable b = random_strategy(6, 2, 4, rng);

  StrategyTable m = a;
  mutate_strategy(m, rng, 1);
  validate_strategy(m);
  EXPECT_NE(m, a);  // one flip always lands on a *different* legal value

  for (int i = 0; i < 16; ++i) {
    const StrategyTable child = crossover_strategy(a, b, rng);
    validate_strategy(child);
    // Every broadcast row comes verbatim from one parent.
    for (std::uint32_t r = 0; r < child.rounds; ++r) {
      bool from_a = true, from_b = true;
      for (std::uint32_t k = 0; k < child.buckets; ++k) {
        const std::size_t at = static_cast<std::size_t>(r) * child.buckets + k;
        from_a = from_a && child.broadcast[at] == a.broadcast[at];
        from_b = from_b && child.broadcast[at] == b.broadcast[at];
      }
      EXPECT_TRUE(from_a || from_b) << "row " << r;
    }
  }
}

TEST(Fitness, SilentAlwaysYesScoresExactlyHalf) {
  // The E17 anchor: with silent broadcasts and all-YES votes the error is
  // all of V2's mass = 1/2, in exact integers.
  const FitnessOracle oracle(6, 1);
  const BatchRunner runner(2);
  const auto score = oracle.evaluate(silent_always_yes(6, 1, 4), runner);
  EXPECT_EQ(score.wrong_yes, 0u);
  EXPECT_EQ(score.wrong_no, oracle.v2_count());
  EXPECT_EQ(score.err_scaled * 2, score.denom);
  EXPECT_DOUBLE_EQ(score.error(), 0.5);
  EXPECT_EQ(score.denom, oracle.denom());

  // And it agrees with the decision optimizer's silent baseline.
  const auto rep = optimize_decision_rule(
      6, 1, two_cycle_adversary_factory(AdversaryKind::kSilent, 1, always_yes_rule()));
  EXPECT_EQ(rep.greedy_error_num * 2, rep.greedy_error_den);
}

TEST(Fitness, EvaluationIsThreadCountInvariant) {
  const FitnessOracle oracle(6, 2);
  Rng rng(99);
  const StrategyTable table = random_strategy(6, 2, 4, rng);
  const auto serial = oracle.evaluate(table, BatchRunner(1));
  const auto wide = oracle.evaluate(table, BatchRunner(8));
  EXPECT_EQ(serial, wide);
}

TEST(Fitness, CandidateOrderIsTotalAndDeterministic) {
  FitnessResult better, worse;
  better.err_scaled = 10;
  worse.err_scaled = 11;
  EXPECT_TRUE(candidate_improves(worse, "a", better, "b"));
  EXPECT_FALSE(candidate_improves(better, "a", worse, "b"));
  // Exact tie: lexicographically smaller serialization wins.
  EXPECT_TRUE(candidate_improves(better, "b", better, "a"));
  EXPECT_FALSE(candidate_improves(better, "a", better, "b"));
  EXPECT_FALSE(candidate_improves(better, "a", better, "a"));
}

TEST(Fitness, ImpossibleScoreIsAVerifierAnomalyNotADiscovery) {
  const FitnessOracle oracle(6, 1);
  const StrategyTable table = silent_always_yes(6, 1, 2);
  // The silent table's certificate floor is positive…
  const std::uint64_t floor = oracle.certificate_floor_scaled(table);
  ASSERT_GT(floor, 0u);
  // …so a claimed below-floor score must fail the serial re-check loudly.
  FitnessResult impossible;
  impossible.err_scaled = 0;
  impossible.denom = oracle.denom();
  try {
    oracle.check_candidate(table, impossible);
    FAIL() << "a below-floor score was accepted as a discovery";
  } catch (const VerifierAnomalyError& e) {
    EXPECT_STREQ(e.kind(), "VerifierAnomalyError");
  }
  // A legitimate score passes and reports the floor it was checked against.
  const auto real = oracle.evaluate(table, BatchRunner(2));
  EXPECT_EQ(oracle.check_candidate(table, real), floor);
  EXPECT_GE(real.err_scaled, floor);
}

TEST(Search, SeededDriversRediscoverTheExhaustiveOptimum) {
  // n=6 t=1 K=2: 3^2 · 2^2 = 36 tables, fully enumerable. The exhaustive
  // driver is ground truth; the seeded drivers must land on the same optimal
  // error (this is the E17 agreement check scaled to the searchable genome).
  const FitnessOracle oracle(6, 1);
  SearchConfig config;
  config.n = 6;
  config.rounds = 1;
  config.buckets = 2;
  config.driver = SearchDriver::kExhaustive;
  const SearchOutcome truth = run_search(config, oracle);
  EXPECT_EQ(truth.evaluated, 36u);
  EXPECT_GE(truth.best_score.err_scaled, truth.floor_scaled);

  config.budget = 64;
  config.seed = 2019;
  for (const SearchDriver driver : {SearchDriver::kRandom, SearchDriver::kEvolution}) {
    config.driver = driver;
    const SearchOutcome found = run_search(config, oracle);
    EXPECT_EQ(found.best_score.err_scaled, truth.best_score.err_scaled)
        << search_driver_name(driver);
    // Same exact order, same space: the unique best table must coincide.
    EXPECT_EQ(strategy_digest(found.best), strategy_digest(truth.best))
        << search_driver_name(driver);
  }
}

TEST(Search, RunIsAPureFunctionOfItsConfig) {
  const FitnessOracle oracle(6, 1);
  SearchConfig config;
  config.n = 6;
  config.rounds = 1;
  config.buckets = 4;
  config.budget = 48;
  config.seed = 31337;
  config.driver = SearchDriver::kEvolution;

  config.threads = 1;
  const SearchOutcome serial = run_search(config, oracle);
  config.threads = 8;
  const SearchOutcome wide = run_search(config, oracle);
  // threads is a scheduling knob: the artifact text (and so every digest
  // downstream) must not change. Render with threads pinned out of view —
  // the artifact never mentions it.
  EXPECT_EQ(render_search_artifact(config, serial), render_search_artifact(config, wide));
  EXPECT_EQ(serial.best_score, wide.best_score);
  EXPECT_EQ(serial.evaluated, wide.evaluated);
  EXPECT_EQ(serial.improvements, wide.improvements);
}

TEST(Search, ExhaustiveRefusesSpacesOverTheCap) {
  SearchConfig config;
  config.n = 6;
  config.rounds = 3;
  config.buckets = 16;  // 3^48 · 2^16 — absurd; must refuse, not spin
  config.driver = SearchDriver::kExhaustive;
  EXPECT_THROW(run_search(config), std::invalid_argument);
}

TEST(Search, BandwidthBeyondOneIsRefused) {
  SearchConfig config;
  config.bandwidth = 2;
  EXPECT_THROW(run_search(config), std::invalid_argument);
}

TEST(Search, ArtifactReportsTheBoundWasRespected) {
  SearchConfig config;
  config.n = 6;
  config.rounds = 1;
  config.buckets = 2;
  config.driver = SearchDriver::kExhaustive;
  const SearchOutcome outcome = run_search(config);
  const std::string artifact = render_search_artifact(config, outcome);
  EXPECT_NE(artifact.find("bound-respected yes"), std::string::npos) << artifact;
  EXPECT_NE(artifact.find("strategy-digest"), std::string::npos);
  EXPECT_NE(artifact.find(serialize_strategy(outcome.best)), std::string::npos);
}

TEST(SearchCampaign, JobSeedsAreDeterministicAndPerCell) {
  EXPECT_EQ(search_job_seed(2019, "n6-t1-random"), search_job_seed(2019, "n6-t1-random"));
  EXPECT_NE(search_job_seed(2019, "n6-t1-random"), search_job_seed(2019, "n6-t1-evolution"));
  EXPECT_NE(search_job_seed(2019, "n6-t1-random"), search_job_seed(2020, "n6-t1-random"));
}

TEST(SearchCampaign, HasUniqueNamesAndAnExhaustiveGroundTruthCell) {
  const Campaign campaign = search_campaign(2019);
  EXPECT_EQ(campaign.name, "search");
  ASSERT_GE(campaign.jobs.size(), 4u);
  for (std::size_t i = 0; i < campaign.jobs.size(); ++i) {
    for (std::size_t j = i + 1; j < campaign.jobs.size(); ++j) {
      EXPECT_NE(campaign.jobs[i].name, campaign.jobs[j].name);
    }
  }
  bool has_exhaustive = false;
  for (const CampaignJob& job : campaign.jobs) {
    has_exhaustive = has_exhaustive || job.name.find("exhaustive") != std::string::npos;
  }
  EXPECT_TRUE(has_exhaustive);
}

TEST(SearchCampaign, StopAtEveryBoundaryThenResumeIsBitIdentical) {
  // The SIGKILL-resume contract, driven through the interrupt seam the CLI
  // uses: stop after k batches, resume, and demand the final artifacts match
  // an uninterrupted run byte for byte.
  const std::string base = test_dir();
  const Campaign campaign = search_campaign(77);

  CampaignConfig ref_config;
  ref_config.dir = base + "/ref";
  ref_config.threads = 1;
  ASSERT_TRUE(CampaignRunner(ref_config).run(campaign).all_done());
  const std::string ref_final = raw_read(campaign_final_path(ref_config.dir));
  const std::string ref_golden = raw_read(campaign_golden_path(ref_config.dir));
  ASSERT_FALSE(ref_golden.empty());

  for (unsigned stop_after = 1; stop_after <= 3; ++stop_after) {
    const std::string dir = base + "/stop" + std::to_string(stop_after);
    CampaignConfig interrupted;
    interrupted.dir = dir;
    interrupted.threads = 1;
    interrupted.stop_after_batches = stop_after;
    EXPECT_TRUE(CampaignRunner(interrupted).run(campaign).interrupted);

    CampaignConfig resume;
    resume.dir = dir;
    resume.threads = 1;
    resume.resume = true;
    EXPECT_TRUE(CampaignRunner(resume).run(campaign).all_done());
    EXPECT_EQ(raw_read(campaign_final_path(dir)), ref_final) << "stop_after " << stop_after;
    EXPECT_EQ(raw_read(campaign_golden_path(dir)), ref_golden) << "stop_after " << stop_after;
  }
}

TEST(SearchCampaign, SingleCellCampaignEncodesTheCellInItsName) {
  SearchConfig config;
  config.n = 6;
  config.rounds = 1;
  config.buckets = 2;
  config.budget = 8;
  config.seed = 5;
  config.driver = SearchDriver::kRandom;
  const Campaign campaign = single_cell_search_campaign(config);
  ASSERT_EQ(campaign.jobs.size(), 1u);
  EXPECT_EQ(campaign.name, "search-n6-t1-random-k2-b8");
  EXPECT_EQ(campaign.jobs[0].name, "n6-t1-random-k2-b8");
  EXPECT_EQ(campaign.seed, 5u);

  // Two different cells can never share a checkpoint: names differ.
  config.budget = 9;
  EXPECT_NE(single_cell_search_campaign(config).name, campaign.name);
}

}  // namespace
}  // namespace bcclb

// bccd serving subsystem: wire codec, artifact cache, handlers, the daemon
// itself, and the load generator.
//
// The end-to-end tests run a real ServeServer on an ephemeral TCP port (or a
// Unix socket where the test is about the socket file) with the I/O loop on
// a background thread, and drive it through ServeClient — the same path
// `bcclb serve` / `bcclb loadgen` take. The scheduler's test_hold hook makes
// the overload and coalescing scenarios deterministic instead of racy.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <typeinfo>
#include <vector>

#include "bcc/batch_runner.h"
#include "bcc/checkpoint.h"
#include "common/errors.h"
#include "common/random.h"
#include "linalg/tiled_rank.h"
#include "search/engine.h"
#include "serve/artifact_cache.h"
#include "serve/chaos.h"
#include "serve/client.h"
#include "serve/disk_store.h"
#include "serve/handlers.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace bcclb {
namespace {

// ---- helpers ---------------------------------------------------------------

Request classify_request(std::uint32_t n, std::uint64_t packed) {
  Request r;
  r.type = RequestType::kClassify;
  r.n = n;
  r.packed = packed;
  return r;
}

Request indist_request(std::uint32_t n) {
  Request r;
  r.type = RequestType::kIndistGraph;
  r.n = n;
  return r;
}

Request rank_request(char family, std::uint32_t n) {
  Request r;
  r.type = RequestType::kRank;
  r.family = static_cast<std::uint8_t>(family);
  r.n = n;
  return r;
}

Request sim_implicit_request(std::uint8_t family, std::uint32_t n, std::uint64_t seed) {
  Request r;
  r.type = RequestType::kSimImplicit;
  r.family = family;
  r.n = n;
  r.packed = seed;
  return r;
}

Request rank_tile_request(char field, std::uint32_t n, std::uint64_t tile_rows,
                          std::uint64_t tile_index) {
  Request r;
  r.type = RequestType::kRankTile;
  r.family = static_cast<std::uint8_t>(field);
  r.n = n;
  r.packed = (tile_rows << 32) | tile_index;
  return r;
}

Request best_strategy_request(char driver, std::uint32_t n, std::uint64_t rounds,
                              std::uint64_t buckets, std::uint64_t seed, std::uint64_t budget) {
  Request r;
  r.type = RequestType::kBestStrategy;
  r.family = static_cast<std::uint8_t>(driver);
  r.n = n;
  r.packed = (rounds << 56) | (buckets << 48) | (seed << 32) | budget;
  return r;
}

// Packed word of the canonical single cycle 0 -> 1 -> ... -> n-1 -> 0.
std::uint64_t ring_word(std::uint32_t n) {
  std::uint64_t packed = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    packed |= static_cast<std::uint64_t>((v + 1) % n) << (4 * v);
  }
  return packed;
}

// A released-once latch for ServeConfig::test_hold: the first scheduler pass
// blocks until release(); later passes fall straight through.
struct SchedulerHold {
  std::mutex m;
  std::condition_variable cv;
  bool holding = false;
  bool released = false;

  std::function<void()> hook() {
    return [this] {
      std::unique_lock<std::mutex> lock(m);
      holding = true;
      cv.notify_all();
      cv.wait(lock, [this] { return released; });
    };
  }
  void wait_until_held() {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [this] { return holding; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(m);
    released = true;
    cv.notify_all();
  }
};

// Binds, runs the I/O loop on a background thread, drains on destruction.
class RunningServer {
 public:
  explicit RunningServer(ServeConfig config) : server_(std::move(config)) {
    server_.bind();
    thread_ = std::thread([this] { stats_ = server_.run(); });
  }
  ~RunningServer() {
    if (thread_.joinable()) {
      server_.begin_drain();
      thread_.join();
    }
  }
  ServeServer& server() { return server_; }
  ServeClient connect() { return ServeClient::connect_tcp(server_.tcp_port()); }
  ServeStats stop() {
    server_.begin_drain();
    thread_.join();
    return stats_;
  }

 private:
  ServeServer server_;
  std::thread thread_;
  ServeStats stats_;
};

// ---- wire codec ------------------------------------------------------------

TEST(Wire, RequestRoundTripsEveryType) {
  const Request requests[] = {
      [] { Request r; r.type = RequestType::kStats; return r; }(),
      classify_request(6, ring_word(6)),
      indist_request(7),
      rank_request('M', 5),
      rank_request('E', 8),
      [] {
        Request r;
        r.type = RequestType::kInfo;
        r.n = 6;
        r.keep_bits = 0x3fe0000000000000ULL;  // 0.5
        return r;
      }(),
      sim_implicit_request(1, 100, 2019),
      rank_tile_request('p', 7, 256, 2),
      best_strategy_request('e', 6, 1, 4, 2019, 96),
  };
  for (const Request& request : requests) {
    const std::string frame = encode_request_frame(request);
    const FrameHeader header = decode_frame_header(frame);
    EXPECT_EQ(header.version, kWireVersion);
    EXPECT_EQ(header.status, 0);
    ASSERT_EQ(frame.size(), kFrameHeaderBytes + header.payload_len);
    const Request decoded =
        decode_request(header.type, std::string_view(frame).substr(kFrameHeaderBytes));
    EXPECT_EQ(decoded, request) << request_type_name(request.type);
  }
}

TEST(Wire, OkAndErrorFramesRoundTrip) {
  const std::string artifact = "rank M_5 ...\nfull rank = yes\n";
  const std::string ok = encode_ok_frame(RequestType::kRank, CacheSource::kHit,
                                         fnv1a(artifact), artifact);
  const FrameHeader ok_header = decode_frame_header(ok);
  const Response ok_resp =
      decode_response(ok_header, std::string_view(ok).substr(kFrameHeaderBytes));
  EXPECT_EQ(ok_resp.status, StatusCode::kOk);
  EXPECT_EQ(ok_resp.source, CacheSource::kHit);
  EXPECT_EQ(ok_resp.artifact, artifact);
  EXPECT_EQ(ok_resp.digest, fnv1a(artifact));

  const std::string err =
      encode_error_frame(RequestType::kInfo, StatusCode::kQueueFull, "queue full");
  const FrameHeader err_header = decode_frame_header(err);
  const Response err_resp =
      decode_response(err_header, std::string_view(err).substr(kFrameHeaderBytes));
  EXPECT_EQ(err_resp.status, StatusCode::kQueueFull);
  EXPECT_EQ(err_resp.type, RequestType::kInfo);
  EXPECT_EQ(err_resp.artifact, "queue full");
}

TEST(Wire, RejectsBadMagicVersionAndTruncation) {
  std::string frame = encode_request_frame(rank_request('M', 4));
  std::string bad_magic = frame;
  bad_magic[0] = 'X';
  EXPECT_THROW(decode_frame_header(bad_magic), ProtocolViolationError);

  std::string bad_version = frame;
  bad_version[4] = 9;
  EXPECT_THROW(decode_frame_header(bad_version), ProtocolViolationError);

  EXPECT_THROW(decode_frame_header(std::string_view(frame).substr(0, 5)),
               ProtocolViolationError);

  // Truncated and overlong payloads both fail decode_request.
  const std::string_view payload = std::string_view(frame).substr(kFrameHeaderBytes);
  EXPECT_THROW(decode_request(static_cast<std::uint8_t>(RequestType::kRank),
                              payload.substr(0, payload.size() - 1)),
               ProtocolViolationError);
  EXPECT_THROW(decode_request(static_cast<std::uint8_t>(RequestType::kRank),
                              std::string(payload) + "x"),
               ProtocolViolationError);
  EXPECT_THROW(decode_request(99, payload), ProtocolViolationError);
}

TEST(Wire, ValidatesParameterRanges) {
  const auto decode = [](const Request& request) {
    const std::string payload = encode_request_payload(request);
    return decode_request(static_cast<std::uint8_t>(request.type), payload);
  };
  EXPECT_THROW(decode(classify_request(17, 0)), ProtocolViolationError);
  EXPECT_THROW(decode(classify_request(2, 0)), ProtocolViolationError);
  EXPECT_THROW(decode(indist_request(kMinIndistN - 1)), ProtocolViolationError);
  EXPECT_THROW(decode(indist_request(kMaxIndistN + 1)), ProtocolViolationError);
  EXPECT_THROW(decode(rank_request('X', 4)), ProtocolViolationError);
  EXPECT_THROW(decode(rank_request('M', kMaxRankMN + 1)), ProtocolViolationError);
  EXPECT_THROW(decode(rank_request('E', 7)), ProtocolViolationError);  // odd
  Request info;
  info.type = RequestType::kInfo;
  info.n = 4;
  info.keep_bits = 0x4000000000000000ULL;  // 2.0
  EXPECT_THROW(decode(info), ProtocolViolationError);
  info.keep_bits = 0x7ff8000000000000ULL;  // NaN
  EXPECT_THROW(decode(info), ProtocolViolationError);
  // sim-implicit: unknown family byte, and n outside the serving range.
  EXPECT_THROW(decode(sim_implicit_request(4, 100, 0)), ProtocolViolationError);
  EXPECT_THROW(decode(sim_implicit_request(0, kMinSimImplicitN - 1, 0)), ProtocolViolationError);
  EXPECT_THROW(decode(sim_implicit_request(0, kMaxSimImplicitN + 1, 0)), ProtocolViolationError);
  // rank-tile: bad field byte, n / tile_rows outside the range, and a tile
  // index past the last tile of M_n (B_7 = 877 -> 4 tiles of 256).
  EXPECT_THROW(decode(rank_tile_request('M', 7, 256, 0)), ProtocolViolationError);
  EXPECT_THROW(decode(rank_tile_request('p', kMaxRankMN + 1, 256, 0)), ProtocolViolationError);
  EXPECT_THROW(decode(rank_tile_request('p', 7, 0, 0)), ProtocolViolationError);
  EXPECT_THROW(decode(rank_tile_request('p', 7, kMaxRankTileRows + 1, 0)),
               ProtocolViolationError);
  EXPECT_THROW(decode(rank_tile_request('p', 7, 256, 4)), ProtocolViolationError);
  EXPECT_EQ(decode(rank_tile_request('p', 7, 256, 3)).n, 7u);
  // best-strategy: bad driver byte, n / rounds / buckets / budget outside the
  // serving ranges, and an exhaustive cell whose space is too large to build
  // interactively (rounds*buckets must stay <= 6 with buckets <= 4).
  EXPECT_THROW(decode(best_strategy_request('z', 6, 1, 4, 1, 32)), ProtocolViolationError);
  EXPECT_THROW(decode(best_strategy_request('e', kMinSearchN - 1, 1, 4, 1, 32)),
               ProtocolViolationError);
  EXPECT_THROW(decode(best_strategy_request('e', kMaxSearchN + 1, 1, 4, 1, 32)),
               ProtocolViolationError);
  EXPECT_THROW(decode(best_strategy_request('e', 6, 0, 4, 1, 32)), ProtocolViolationError);
  EXPECT_THROW(decode(best_strategy_request('e', 6, kMaxSearchRounds + 1, 4, 1, 32)),
               ProtocolViolationError);
  EXPECT_THROW(decode(best_strategy_request('e', 6, 1, 0, 1, 32)), ProtocolViolationError);
  EXPECT_THROW(decode(best_strategy_request('e', 6, 1, kMaxSearchBuckets + 1, 1, 32)),
               ProtocolViolationError);
  EXPECT_THROW(decode(best_strategy_request('e', 6, 1, 4, 1, 0)), ProtocolViolationError);
  EXPECT_THROW(decode(best_strategy_request('e', 6, 1, 4, 1, kMaxSearchBudget + 1)),
               ProtocolViolationError);
  EXPECT_THROW(decode(best_strategy_request('x', 6, 2, 4, 1, 0)), ProtocolViolationError);
  EXPECT_THROW(decode(best_strategy_request('x', 6, 1, 8, 1, 0)), ProtocolViolationError);
  EXPECT_EQ(decode(best_strategy_request('x', 6, 1, 4, 1, 0)).n, 6u);
  EXPECT_EQ(decode(best_strategy_request('e', 7, 2, 8, 65535, 512)).n, 7u);
}

TEST(Wire, CacheKeyIsContentAddressed) {
  EXPECT_EQ(request_cache_key(rank_request('M', 5)), request_cache_key(rank_request('M', 5)));
  EXPECT_NE(request_cache_key(rank_request('M', 5)), request_cache_key(rank_request('M', 6)));
  EXPECT_NE(request_cache_key(rank_request('M', 6)), request_cache_key(rank_request('E', 6)));
  EXPECT_NE(request_cache_key(indist_request(6)), request_cache_key(rank_request('M', 6)));
}

// ---- artifact cache --------------------------------------------------------

TEST(ArtifactCache, LruEvictsUnderByteBudget) {
  // Budget fits exactly two entries of (100 + overhead) bytes.
  ArtifactCache cache(2 * (100 + ArtifactCache::kEntryOverheadBytes));
  cache.insert(1, std::string(100, 'a'));
  cache.insert(2, std::string(100, 'b'));
  ASSERT_TRUE(cache.lookup(1).has_value());  // 1 is now most-recent
  cache.insert(3, std::string(100, 'c'));    // evicts 2, the LRU entry
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, stats.budget_bytes);
}

TEST(ArtifactCache, OversizedEntryIsNeverCached) {
  ArtifactCache cache(64);
  cache.insert(1, std::string(1000, 'x'));
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ArtifactCache, HitVerifiesDigestAndDropsCorruptEntries) {
  ArtifactCache cache(1 << 20);
  cache.insert(7, "pristine artifact bytes");
  ASSERT_TRUE(cache.lookup(7).has_value());
  ASSERT_TRUE(cache.corrupt_entry_for_test(7));
  // The corrupt entry must not be served: it counts as a verify failure and
  // a miss, and the entry is gone so the next insert rebuilds it.
  EXPECT_FALSE(cache.lookup(7).has_value());
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.verify_failures, 1u);
  EXPECT_EQ(stats.entries, 0u);
  cache.insert(7, "pristine artifact bytes");
  EXPECT_TRUE(cache.lookup(7).has_value());
}

TEST(ArtifactCache, BudgetResolutionPrecedence) {
  EXPECT_EQ(resolve_cache_budget(12345), 12345u);
  ASSERT_EQ(setenv("BCCLB_MEM_BUDGET", "2M", 1), 0);
  EXPECT_EQ(resolve_cache_budget(0), 2u << 20);
  ASSERT_EQ(unsetenv("BCCLB_MEM_BUDGET"), 0);
  EXPECT_EQ(resolve_cache_budget(0), 64ULL << 20);
}

// ---- handlers --------------------------------------------------------------

TEST(Handlers, ClassifyVerdictsAndValidation) {
  const std::string one = classify_artifact(6, ring_word(6));
  EXPECT_NE(one.find("ONE-CYCLE"), std::string::npos);
  // Two triangles: 0->1->2->0 and 3->4->5->3 (successor nibbles, v0 lowest).
  const std::uint64_t two = 0x354021;
  const std::string two_art = classify_artifact(6, two);
  EXPECT_NE(two_art.find("TWO-CYCLE"), std::string::npos);

  // The identity word has six fixed points: cycles of length 1.
  std::uint64_t identity = 0;
  for (std::uint32_t v = 0; v < 6; ++v) identity |= static_cast<std::uint64_t>(v) << (4 * v);
  EXPECT_THROW(classify_artifact(6, identity), ProtocolViolationError);
  // Not a permutation: two vertices share a successor.
  EXPECT_THROW(classify_artifact(6, 0x111111), ProtocolViolationError);
  // Bits set beyond vertex n-1.
  EXPECT_THROW(classify_artifact(6, ring_word(6) | (std::uint64_t{0xF} << 60)),
               ProtocolViolationError);
}

TEST(Handlers, ArtifactsAreBitIdenticalAcrossThreadWidths) {
  Request request = indist_request(7);
  const std::string serial = compute_artifact(request, 1);
  const std::string parallel = compute_artifact(request, 4);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("star packing"), std::string::npos);
  EXPECT_NE(serial.find("csr digest"), std::string::npos);
}

TEST(Handlers, RankAndInfoArtifactsCarryTheCertificates) {
  const std::string rank_m = rank_artifact('M', 5);
  EXPECT_NE(rank_m.find("full rank = yes"), std::string::npos);
  const std::string rank_e = rank_artifact('E', 8);
  EXPECT_NE(rank_e.find("rank E_8"), std::string::npos);
  const std::string info = info_artifact(5, 1.0);
  EXPECT_NE(info.find("Theorem 4.5"), std::string::npos);
}

TEST(Handlers, SimImplicitVerdictsAndDeterminism) {
  // One cycle is connected, two cycles are not; the artifact carries the
  // verdict and the labels digest but no timing fields.
  const std::string one = sim_implicit_artifact(0, 100, 2019, 1);
  EXPECT_NE(one.find("decision = YES"), std::string::npos);
  EXPECT_NE(one.find("correct = yes"), std::string::npos);
  const std::string two = sim_implicit_artifact(1, 100, 2019, 1);
  EXPECT_NE(two.find("components found = 2, expected = 2"), std::string::npos);
  EXPECT_NE(two.find("decision = NO"), std::string::npos);
  EXPECT_NE(two.find("labels digest"), std::string::npos);
  EXPECT_EQ(two.find("rounds/sec"), std::string::npos);

  // Bit-identical across worker thread widths (the cache-soundness contract).
  EXPECT_EQ(two, sim_implicit_artifact(1, 100, 2019, 8));
  Request request = sim_implicit_request(1, 100, 2019);
  EXPECT_EQ(compute_artifact(request, 1), two);

  // Passed wire validation but fails the per-family constraint.
  EXPECT_THROW(sim_implicit_artifact(2, 8, 0, 1), ProtocolViolationError);
}

TEST(Handlers, RankTileMatchesTheTiledEngineAndThreadWidths) {
  // The artifact is a pure function of (field, n, tile_rows, tile_index):
  // byte-identical across worker widths, and its digest line matches a
  // directly generated tile.
  const Request request = rank_tile_request('p', 6, 64, 1);
  const std::string serial = compute_artifact(request, 1);
  EXPECT_EQ(serial, compute_artifact(request, 4));
  const JoinTile tile = generate_join_tile(6, 64, 128, 1);
  EXPECT_NE(serial.find(digest_hex(tile.digest)), std::string::npos);
  EXPECT_NE(serial.find("rows = [64, 128) of 203"), std::string::npos);

  // A whole-matrix "tile" of M_6 reproduces the dense ranks: full B_6 = 203
  // over mod p, 2^5 = 32 over GF(2).
  const std::string whole_p = compute_artifact(rank_tile_request('p', 6, 203, 0), 1);
  EXPECT_NE(whole_p.find("tile rank = 203 / 203"), std::string::npos);
  const std::string whole_2 = compute_artifact(rank_tile_request('2', 6, 203, 0), 1);
  EXPECT_NE(whole_2.find("tile rank = 32 / 203"), std::string::npos);
}

TEST(Handlers, BestStrategyMatchesADirectSearchRunAndThreadWidths) {
  // The handler is a pure function of the request: byte-identical across
  // worker widths, and exactly the rendered artifact of the equivalent
  // run_search call (the cell's parameters all travel in the request).
  const Request request = best_strategy_request('e', 6, 1, 4, 2019, 48);
  const std::string serial = compute_artifact(request, 1);
  EXPECT_EQ(serial, compute_artifact(request, 4));

  SearchConfig config;
  config.n = 6;
  config.rounds = 1;
  config.buckets = 4;
  config.seed = 2019;
  config.budget = 48;
  config.driver = SearchDriver::kEvolution;
  EXPECT_EQ(serial, render_search_artifact(config, run_search(config)));
  EXPECT_NE(serial.find("bound-respected yes"), std::string::npos) << serial;

  // The exhaustive driver through the same pipe: the ground-truth cell.
  const std::string truth = compute_artifact(best_strategy_request('x', 6, 1, 2, 0, 0), 1);
  EXPECT_NE(truth.find("driver exhaustive"), std::string::npos);
  EXPECT_NE(truth.find("evaluated 36"), std::string::npos);
}

TEST(ServeServer, BestStrategyServesWarmAndColdByteIdentically) {
  RunningServer running({});
  ServeClient client = running.connect();
  const Request request = best_strategy_request('r', 6, 1, 4, 7, 32);

  const Response cold = client.request(request);
  ASSERT_EQ(cold.status, StatusCode::kOk);
  EXPECT_EQ(cold.source, CacheSource::kCold);
  EXPECT_EQ(cold.digest, fnv1a(cold.artifact));
  EXPECT_NE(cold.artifact.find("bcclb search artifact v1"), std::string::npos);
  EXPECT_NE(cold.artifact.find("driver random seed 7 budget 32"), std::string::npos);
  EXPECT_NE(cold.artifact.find("bound-respected yes"), std::string::npos);

  const Response warm = client.request(request);
  ASSERT_EQ(warm.status, StatusCode::kOk);
  EXPECT_EQ(warm.source, CacheSource::kHit);
  EXPECT_EQ(warm.artifact, cold.artifact);
  (void)running.stop();
}

TEST(ServeServer, RankTileServesAndCachesEndToEnd) {
  RunningServer running({});
  ServeClient client = running.connect();
  const Request request = rank_tile_request('p', 7, 256, 1);

  const Response cold = client.request(request);
  ASSERT_EQ(cold.status, StatusCode::kOk);
  EXPECT_EQ(cold.source, CacheSource::kCold);
  EXPECT_EQ(cold.digest, fnv1a(cold.artifact));
  EXPECT_NE(cold.artifact.find("rank-tile M_7 field=modp tile=1/4"), std::string::npos);
  EXPECT_NE(cold.artifact.find("rows = [256, 512) of 877"), std::string::npos);

  const Response warm = client.request(request);
  ASSERT_EQ(warm.status, StatusCode::kOk);
  EXPECT_EQ(warm.source, CacheSource::kHit);
  EXPECT_EQ(warm.artifact, cold.artifact);
  (void)running.stop();
}

// ---- errors ----------------------------------------------------------------

TEST(ServeErrors, TaxonomyKindsAndTransience) {
  const QueueFullError queue_full("q");
  EXPECT_STREQ(queue_full.kind(), "QueueFullError");
  EXPECT_TRUE(queue_full.transient());  // retry after backoff is sane
  const RequestTooLargeError too_large("t");
  EXPECT_STREQ(too_large.kind(), "RequestTooLargeError");
  EXPECT_FALSE(too_large.transient());
  const ProtocolViolationError proto("p");
  EXPECT_STREQ(proto.kind(), "ProtocolViolationError");
  const DrainingError draining("d");
  EXPECT_STREQ(draining.kind(), "DrainingError");
  const ServeError* as_base = &queue_full;
  EXPECT_NE(dynamic_cast<const BcclbError*>(as_base), nullptr);
}

TEST(ServeErrors, ClientTaxonomyKindsAndTransience) {
  const ClientTimeoutError timeout("t");
  EXPECT_STREQ(timeout.kind(), "ClientTimeoutError");
  EXPECT_TRUE(timeout.transient());  // the retry loop keys off this
  const ConnectionLostError lost("l");
  EXPECT_STREQ(lost.kind(), "ConnectionLostError");
  EXPECT_TRUE(lost.transient());
  const ServerReportedError reported("r", static_cast<std::uint16_t>(StatusCode::kDraining));
  EXPECT_STREQ(reported.kind(), "ServerReportedError");
  EXPECT_FALSE(reported.transient());
  EXPECT_EQ(reported.wire_status(), static_cast<std::uint16_t>(StatusCode::kDraining));
  // All three are catchable as ServeClientError and as ServeError.
  const ServeClientError* as_client = &timeout;
  EXPECT_NE(dynamic_cast<const ServeError*>(as_client), nullptr);
}

// ---- decode fuzz -----------------------------------------------------------

// Seeded mutation fuzz over the client-side decode path: truncations, bit
// flips in header and payload, and oversized length fields must either decode
// (possibly to junk a digest check would catch) or throw exactly
// ProtocolViolationError — never another exception type, never a crash.
TEST(WireFuzz, MutatedFramesOnlyEverThrowProtocolViolation) {
  std::vector<std::string> corpus;
  corpus.push_back(encode_request_frame(classify_request(6, ring_word(6))));
  corpus.push_back(encode_request_frame(indist_request(7)));
  corpus.push_back(encode_request_frame(rank_request('E', 8)));
  corpus.push_back(encode_request_frame(sim_implicit_request(1, 100, 2019)));
  const std::string artifact = "rank M_5 ...\nfull rank = yes\n";
  corpus.push_back(
      encode_ok_frame(RequestType::kRank, CacheSource::kCold, fnv1a(artifact), artifact));
  corpus.push_back(
      encode_error_frame(RequestType::kInfo, StatusCode::kQueueFull, "admission queue full"));

  Rng rng(0xf0a22edULL);
  for (int iter = 0; iter < 4000; ++iter) {
    std::string frame = corpus[rng.next_below(corpus.size())];
    switch (rng.next_below(3)) {
      case 0:  // truncate anywhere, including inside the header
        frame.resize(rng.next_below(frame.size() + 1));
        break;
      case 1: {  // flip one bit anywhere
        if (!frame.empty()) {
          frame[rng.next_below(frame.size())] ^=
              static_cast<char>(1u << rng.next_below(8));
        }
        break;
      }
      default: {  // oversize or shrink the length field
        if (frame.size() >= kFrameHeaderBytes) {
          const std::uint32_t bogus = static_cast<std::uint32_t>(rng.next_u64());
          for (int i = 0; i < 4; ++i) {
            frame[8 + i] = static_cast<char>((bogus >> (8 * i)) & 0xff);
          }
        }
        break;
      }
    }
    try {
      const FrameHeader header = decode_frame_header(frame);
      std::string_view payload = std::string_view(frame).substr(
          std::min<std::size_t>(kFrameHeaderBytes, frame.size()));
      payload = payload.substr(0, std::min<std::size_t>(payload.size(), header.payload_len));
      if (rng.next_bool()) {
        decode_request(header.type, payload);
      } else {
        decode_response(header, payload);
      }
    } catch (const ProtocolViolationError&) {
      // The one acceptable outcome for malformed bytes.
    } catch (const std::exception& e) {
      FAIL() << "iteration " << iter << " threw " << typeid(e).name() << ": " << e.what();
    }
  }
}

// ---- end-to-end server ----------------------------------------------------

TEST(ServeServer, AnswersAndCachesWithByteIdenticalRepeats) {
  RunningServer running({});
  ServeClient client = running.connect();
  const Request request = rank_request('M', 6);

  const Response cold = client.request(request);
  ASSERT_EQ(cold.status, StatusCode::kOk);
  EXPECT_EQ(cold.source, CacheSource::kCold);
  EXPECT_EQ(cold.digest, fnv1a(cold.artifact));
  EXPECT_NE(cold.artifact.find("rank M_6"), std::string::npos);

  const Response warm = client.request(request);
  ASSERT_EQ(warm.status, StatusCode::kOk);
  EXPECT_EQ(warm.source, CacheSource::kHit);
  // Acceptance: a repeated digest-addressed response is byte-identical to
  // the cold computation.
  EXPECT_EQ(warm.artifact, cold.artifact);
  EXPECT_EQ(warm.digest, cold.digest);

  // A second connection sees the same bytes.
  ServeClient other = running.connect();
  const Response again = other.request(request);
  EXPECT_EQ(again.artifact, cold.artifact);
  EXPECT_EQ(again.source, CacheSource::kHit);

  const ServeStats stats = running.stop();
  EXPECT_EQ(stats.responses_ok, 3u);
  EXPECT_EQ(stats.cache.hits, 2u);
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.connections_accepted, 2u);
}

TEST(ServeServer, StatsProbeAnswersInline) {
  RunningServer running({});
  ServeClient client = running.connect();
  Request probe;
  probe.type = RequestType::kStats;
  const Response response = client.request(probe);
  ASSERT_EQ(response.status, StatusCode::kOk);
  EXPECT_NE(response.artifact.find("bccd stats"), std::string::npos);
  EXPECT_NE(response.artifact.find("cache hits"), std::string::npos);
  EXPECT_EQ(running.stop().stats_probes, 1u);
}

TEST(ServeServer, WarmCacheP50IsTenTimesFasterThanCold) {
  using clock = std::chrono::steady_clock;
  RunningServer running({});
  ServeClient client = running.connect();
  const Request request = indist_request(8);  // the E3 n=8 workload

  const auto cold_start = clock::now();
  const Response cold = client.request(request);
  const double cold_ms =
      std::chrono::duration<double, std::milli>(clock::now() - cold_start).count();
  ASSERT_EQ(cold.status, StatusCode::kOk);
  ASSERT_EQ(cold.source, CacheSource::kCold);

  std::vector<double> warm_ms;
  for (int i = 0; i < 9; ++i) {
    const auto t0 = clock::now();
    const Response warm = client.request(request);
    warm_ms.push_back(std::chrono::duration<double, std::milli>(clock::now() - t0).count());
    ASSERT_EQ(warm.source, CacheSource::kHit);
    ASSERT_EQ(warm.artifact, cold.artifact);
  }
  std::sort(warm_ms.begin(), warm_ms.end());
  const double warm_p50 = warm_ms[warm_ms.size() / 2];
  EXPECT_GT(cold_ms, 10.0 * warm_p50)
      << "cold " << cold_ms << " ms vs warm p50 " << warm_p50 << " ms";
}

TEST(ServeServer, OverloadReturnsTypedQueueFullAndConnectionSurvives) {
  SchedulerHold hold;
  ServeConfig config;
  config.queue_capacity = 2;
  config.test_hold = hold.hook();
  RunningServer running(std::move(config));
  ServeClient client = running.connect();

  // r1 wakes the scheduler, which parks in the hold *before* draining the
  // queue; r2 tops the queue off at capacity; r3 must bounce.
  client.send_frame(rank_request('M', 4));
  hold.wait_until_held();
  client.send_frame(rank_request('M', 5));
  client.send_frame(rank_request('M', 6));

  const Response bounced = client.read_response();
  EXPECT_EQ(bounced.status, StatusCode::kQueueFull);
  EXPECT_NE(bounced.artifact.find("admission queue full"), std::string::npos);

  hold.release();
  const Response first = client.read_response();
  const Response second = client.read_response();
  EXPECT_EQ(first.status, StatusCode::kOk);
  EXPECT_EQ(second.status, StatusCode::kOk);
  EXPECT_NE(first.artifact.find("rank M_4"), std::string::npos);
  EXPECT_NE(second.artifact.find("rank M_5"), std::string::npos);

  // The connection that got bounced keeps working.
  const Response retry = client.request(rank_request('M', 6));
  EXPECT_EQ(retry.status, StatusCode::kOk);

  const ServeStats stats = running.stop();
  EXPECT_EQ(stats.queue_full, 1u);
  EXPECT_EQ(stats.responses_ok, 3u);
}

TEST(ServeServer, DrainFinishesInFlightAndRejectsNewRequests) {
  SchedulerHold hold;
  ServeConfig config;
  config.test_hold = hold.hook();
  RunningServer running(std::move(config));
  ServeClient client = running.connect();

  client.send_frame(rank_request('M', 5));
  hold.wait_until_held();
  running.server().begin_drain();
  client.send_frame(rank_request('M', 6));  // arrives while draining

  const Response rejected = client.read_response();
  EXPECT_EQ(rejected.status, StatusCode::kDraining);

  hold.release();
  // The admitted request still completes — drain finishes in-flight work.
  const Response served = client.read_response();
  EXPECT_EQ(served.status, StatusCode::kOk);
  EXPECT_NE(served.artifact.find("rank M_5"), std::string::npos);

  const ServeStats stats = running.stop();
  EXPECT_EQ(stats.draining_rejected, 1u);
  EXPECT_EQ(stats.responses_ok, 1u);
}

TEST(ServeServer, ConcurrentIdenticalRequestsCoalesceIntoOneBuild) {
  SchedulerHold hold;
  ServeConfig config;
  config.test_hold = hold.hook();
  RunningServer running(std::move(config));
  ServeClient client = running.connect();

  const Request request = indist_request(7);
  client.send_frame(request);
  hold.wait_until_held();
  for (int i = 0; i < 4; ++i) client.send_frame(request);
  hold.release();

  std::vector<Response> responses;
  for (int i = 0; i < 5; ++i) responses.push_back(client.read_response());
  std::size_t cold = 0, coalesced = 0;
  for (const Response& response : responses) {
    ASSERT_EQ(response.status, StatusCode::kOk);
    EXPECT_EQ(response.artifact, responses[0].artifact);
    if (response.source == CacheSource::kCold) ++cold;
    if (response.source == CacheSource::kCoalesced) ++coalesced;
  }
  EXPECT_EQ(cold, 1u);
  EXPECT_EQ(coalesced, 4u);
  const ServeStats stats = running.stop();
  EXPECT_EQ(stats.coalesced, 4u);
  EXPECT_EQ(stats.cache.entries, 1u);
}

TEST(ServeServer, OversizedFrameIsSkippedWithoutDroppingTheConnection) {
  RunningServer running({});
  ServeClient client = running.connect();

  // A framing-valid request whose payload exceeds max_request_bytes (64).
  std::string oversized;
  oversized.append(kWireMagic, sizeof kWireMagic);
  oversized.push_back(static_cast<char>(kWireVersion));
  oversized.push_back(static_cast<char>(RequestType::kClassify));
  oversized.append(2, '\0');  // status
  const std::uint32_t len = 500;
  for (int i = 0; i < 4; ++i) oversized.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  oversized.append(len, '\x7f');
  client.send_raw(oversized);

  const Response bounced = client.read_response();
  EXPECT_EQ(bounced.status, StatusCode::kRequestTooLarge);

  // Framing survived the skip: the next well-formed request is served.
  const Response ok = client.request(rank_request('M', 5));
  EXPECT_EQ(ok.status, StatusCode::kOk);
  EXPECT_EQ(running.stop().too_large, 1u);
}

TEST(ServeServer, BadMagicGetsOneErrorFrameThenClose) {
  RunningServer running({});
  ServeClient client = running.connect();
  client.send_raw("GARBAGE BYTES THAT ARE NOT A FRAME");
  const Response error = client.read_response();
  EXPECT_EQ(error.status, StatusCode::kProtocolViolation);
  // The stream is unrecoverable, so the server closes after the flush.
  EXPECT_THROW(client.read_response(), ServeError);
  EXPECT_EQ(running.stop().protocol_violations, 1u);
}

TEST(ServeServer, SemanticComputeFailureIsTypedAndNonFatal) {
  RunningServer running({});
  ServeClient client = running.connect();
  // Passes wire validation (n in range) but the word has 2-cycles.
  const std::uint64_t two_cycles_of_two = 0x2301;  // 0<->1, 2<->3
  const Response failed = client.request(classify_request(4, two_cycles_of_two));
  EXPECT_EQ(failed.status, StatusCode::kProtocolViolation);
  EXPECT_NE(failed.artifact.find("length"), std::string::npos);

  const Response ok = client.request(classify_request(4, ring_word(4)));
  EXPECT_EQ(ok.status, StatusCode::kOk);
  const ServeStats stats = running.stop();
  EXPECT_EQ(stats.compute_failed, 1u);
  EXPECT_EQ(stats.responses_ok, 1u);
}

TEST(ServeServer, UnixSocketReclaimsStaleFilesAndRefusesLiveOnes) {
  const std::string path =
      "/tmp/bcclb_serve_test_" + std::to_string(::getpid()) + ".sock";
  // A stale leftover (regular file here; nobody accepts on it) is reclaimed.
  { std::FILE* f = std::fopen(path.c_str(), "w"); ASSERT_NE(f, nullptr); std::fclose(f); }
  ServeConfig config;
  config.unix_path = path;
  RunningServer running(std::move(config));
  ServeClient client = ServeClient::connect_unix(path);
  EXPECT_EQ(client.request(rank_request('M', 4)).status, StatusCode::kOk);

  // A second daemon on the same live socket must refuse to start.
  ServeConfig second;
  second.unix_path = path;
  ServeServer other(std::move(second));
  EXPECT_THROW(other.bind(), ServeError);

  running.stop();
  // Drain removed the socket file.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

// ---- durable tier + hardened client ---------------------------------------

// Fresh store directory per test, removed on destruction.
struct TempStoreDir {
  std::string path;
  TempStoreDir() {
    char tmpl[] = "/tmp/bcclb_serve_store_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path = made != nullptr ? made : "";
  }
  ~TempStoreDir() {
    if (path.empty()) return;
    const std::string cleanup = "rm -rf '" + path + "'";
    [[maybe_unused]] const int rc = std::system(cleanup.c_str());
  }
};

TEST(ServeServer, RestartWarmsFromDiskWithByteIdenticalResponses) {
  TempStoreDir store;
  const Request request = rank_request('M', 6);
  std::string cold_artifact;
  std::uint64_t cold_digest = 0;
  {
    ServeConfig config;
    config.store_dir = store.path;
    RunningServer running(std::move(config));
    ServeClient client = running.connect();
    const Response cold = client.request(request);
    ASSERT_EQ(cold.status, StatusCode::kOk);
    EXPECT_EQ(cold.source, CacheSource::kCold);
    cold_artifact = cold.artifact;
    cold_digest = cold.digest;
    const ServeStats stats = running.stop();
    EXPECT_EQ(stats.disk.writes, 1u);
  }
  // A brand-new daemon over the same store: the memory cache is empty, but
  // the first request is served from disk, byte-identical, digest-proven.
  ServeConfig config;
  config.store_dir = store.path;
  RunningServer running(std::move(config));
  ServeClient client = running.connect();
  const Response warm = client.request(request);
  ASSERT_EQ(warm.status, StatusCode::kOk);
  EXPECT_EQ(warm.source, CacheSource::kDisk);
  EXPECT_EQ(warm.artifact, cold_artifact);
  EXPECT_EQ(warm.digest, cold_digest);
  // The disk hit filled tier 1: the next repeat is a plain memory hit.
  const Response hot = client.request(request);
  EXPECT_EQ(hot.source, CacheSource::kHit);
  EXPECT_EQ(hot.artifact, cold_artifact);
  const ServeStats stats = running.stop();
  EXPECT_EQ(stats.disk.hits, 1u);
  EXPECT_EQ(stats.disk.quarantined, 0u);
}

TEST(ServeServer, CorruptDiskEntryIsQuarantinedAndRecomputedEndToEnd) {
  TempStoreDir store;
  const Request request = rank_request('M', 5);
  ServeConfig config;
  config.store_dir = store.path;
  config.cache_budget_bytes = 1;  // tier 1 keeps nothing: every hit is disk's
  RunningServer running(std::move(config));
  ServeClient client = running.connect();

  const Response cold = client.request(request);
  ASSERT_EQ(cold.status, StatusCode::kOk);
  ASSERT_NE(running.server().disk_store(), nullptr);
  ASSERT_TRUE(running.server().disk_store()->corrupt_entry_for_test(
      request_cache_key(request)));

  // The rotted entry must not be served: the daemon quarantines, recomputes,
  // and the client still gets the exact bytes of the original build.
  const Response recomputed = client.request(request);
  ASSERT_EQ(recomputed.status, StatusCode::kOk);
  EXPECT_EQ(recomputed.source, CacheSource::kCold);
  EXPECT_EQ(recomputed.artifact, cold.artifact);
  EXPECT_EQ(recomputed.digest, cold.digest);

  const ServeStats stats = running.stop();
  EXPECT_EQ(stats.disk.quarantined, 1u);
  EXPECT_GE(stats.disk.writes, 2u);  // original + recompute
}

TEST(ServeClient, DeadlineExpiryThrowsTypedTimeout) {
  SchedulerHold hold;
  ServeConfig config;
  config.test_hold = hold.hook();
  RunningServer running(std::move(config));
  ServeClient client = running.connect();

  // Park the scheduler so no response can arrive, then require one in 50 ms.
  client.send_frame(rank_request('M', 4));
  hold.wait_until_held();
  ClientRetryPolicy policy;
  policy.deadline_ms = 50;
  EXPECT_THROW(client.request_with_retry(rank_request('M', 5), policy), ClientTimeoutError);
  EXPECT_FALSE(client.connected());  // the poisoned stream was dropped
  hold.release();
}

TEST(ServeClient, ReconnectOnEofRidesOutADaemonRestart) {
  TempStoreDir store;
  const std::string path =
      "/tmp/bcclb_serve_retry_" + std::to_string(::getpid()) + ".sock";
  const Request request = rank_request('E', 6);
  std::string first_artifact;
  ServeConfig config;
  config.unix_path = path;
  config.store_dir = store.path;
  auto running = std::make_unique<RunningServer>(std::move(config));
  ServeClient client = ServeClient::connect_unix(path);
  {
    const Response first = client.request(request);
    ASSERT_EQ(first.status, StatusCode::kOk);
    first_artifact = first.artifact;
  }
  // Kill the daemon (drain closes every connection and the socket), then
  // bring up a fresh one on the same endpoint and store. Destroy the old
  // instance first so its teardown cannot race the new bind on the path.
  running->stop();
  running.reset();
  ServeConfig second;
  second.unix_path = path;
  second.store_dir = store.path;
  running = std::make_unique<RunningServer>(std::move(second));

  // The client still holds the dead connection. The hardened path notices
  // (EOF / reset), reconnects to the remembered endpoint, and the new daemon
  // answers from the durable tier with the same bytes.
  ClientRetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_base_ms = 1;
  policy.backoff_cap_ms = 8;
  const RetryOutcome outcome = client.request_with_retry(request, policy);
  ASSERT_EQ(outcome.response.status, StatusCode::kOk);
  EXPECT_EQ(outcome.response.source, CacheSource::kDisk);
  EXPECT_EQ(outcome.response.artifact, first_artifact);
  EXPECT_GE(outcome.retries, 1u);
  EXPECT_GE(outcome.reconnects, 1u);
  running->stop();
}

TEST(ServeClient, RetryBudgetExhaustionThrowsTheLastError) {
  // The remembered endpoint dies with its server: every reconnect attempt
  // is refused, so the retry budget drains and the last typed error escapes.
  ServeClient client = [] {
    RunningServer running({});
    return running.connect();
  }();
  client.close();
  ClientRetryPolicy policy;
  policy.max_retries = 2;
  policy.backoff_base_ms = 1;
  policy.backoff_cap_ms = 4;
  EXPECT_THROW(client.request_with_retry(rank_request('M', 4), policy), ConnectionLostError);
}

TEST(ServeServer, ChaosCorruptedResponseIsCaughtByDigestNotByCache) {
  ServeConfig config;
  config.faults.seed = 7;
  config.faults.corrupt_response_every = 1;  // every scheduled OK response
  RunningServer running(std::move(config));
  ServeClient client = running.connect();
  const Request request = rank_request('M', 5);

  // The wire copy is corrupted after the digest was computed: the frame
  // decodes, but local re-hashing exposes the flip — exactly what loadgen's
  // digest_mismatches counter is for.
  const Response corrupted = client.request(request);
  ASSERT_EQ(corrupted.status, StatusCode::kOk);
  EXPECT_NE(fnv1a(corrupted.artifact), corrupted.digest);

  // The cache itself stays pristine (corruption is injected on the response
  // path, not the stored artifact), so the hit is corrupted independently —
  // and the underlying artifact digest still matches across serves.
  const Response hit = client.request(request);
  ASSERT_EQ(hit.status, StatusCode::kOk);
  EXPECT_EQ(hit.source, CacheSource::kHit);
  EXPECT_EQ(hit.digest, corrupted.digest);

  const ServeStats stats = running.stop();
  EXPECT_EQ(stats.chaos_corrupted_responses, 2u);
  EXPECT_EQ(stats.cache.verify_failures, 0u);
}

TEST(ServeServer, ChaosStallDelaysScheduledResponses) {
  ServeConfig config;
  config.faults.stall_every = 1;
  config.faults.stall_ms = 30;
  RunningServer running(std::move(config));
  ServeClient client = running.connect();
  const auto t0 = std::chrono::steady_clock::now();
  const Response response = client.request(rank_request('M', 4));
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  ASSERT_EQ(response.status, StatusCode::kOk);
  EXPECT_GE(ms, 30.0);
  EXPECT_EQ(running.stop().chaos_stalls, 1u);
}

// ---- loadgen ---------------------------------------------------------------

TEST(Loadgen, RequestPoolIsSeedDeterministicAndDistinct) {
  LoadgenConfig config;
  config.seed = 11;
  const std::vector<Request> a = loadgen_request_pool(config);
  const std::vector<Request> b = loadgen_request_pool(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;

  std::vector<std::uint64_t> keys;
  for (const Request& request : a) keys.push_back(request_cache_key(request));
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end()) << "duplicate keys";

  config.seed = 12;
  const std::vector<Request> c = loadgen_request_pool(config);
  EXPECT_NE(a, c);
}

TEST(Loadgen, EndToEndRunIsCleanAndReportsGateableJson) {
  RunningServer running({});
  LoadgenConfig config;
  config.tcp_port = running.server().tcp_port();
  config.requests = 200;
  config.concurrency = 4;
  config.seed = 3;
  config.max_n = 7;  // keep the cold builds quick
  config.stats_every = 50;

  const LoadgenReport report = run_loadgen(config);
  EXPECT_EQ(report.requests_sent, 200u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.digest_mismatches, 0u);
  EXPECT_EQ(report.byte_mismatches, 0u);
  EXPECT_GT(report.cache_hits, 0u);
  EXPECT_GT(report.throughput_rps, 0.0);
  EXPECT_GT(report.p50_ms, 0.0);

  const std::string json = loadgen_report_json(config, report);
  for (const char* needle :
       {"\"serve/latency_p50\"", "\"serve/latency_p95\"", "\"serve/latency_p99\"",
        "\"serve/cold_p50\"", "\"serve/warm_p50\"", "\"cpu_time\"", "\"time_unit\": \"ms\"",
        "\"cache_hits\"", "\"disk_hits\"", "\"retries\"", "\"reconnects\"",
        "\"throughput_rps\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

TEST(Loadgen, ZipfSkewIsVisibleInKeyDeciles) {
  RunningServer running({});
  LoadgenConfig config;
  config.tcp_port = running.server().tcp_port();
  config.requests = 300;
  config.concurrency = 4;
  config.seed = 5;
  config.max_n = 7;
  config.pool_size = 20;
  config.stats_every = 0;  // every request is a data-path request
  config.zipf_s = 1.5;

  const LoadgenReport skewed = run_loadgen(config);
  ASSERT_EQ(skewed.key_deciles.size(), 10u);
  std::size_t total_keys = 0, total_requests = 0;
  for (const auto& d : skewed.key_deciles) {
    total_keys += d.keys;
    total_requests += d.requests;
    EXPECT_LE(d.warm, d.requests);
  }
  EXPECT_EQ(total_keys, config.pool_size);   // every pool key lands in a decile
  EXPECT_EQ(total_requests, config.requests);  // no probe leaks into the buckets
  // s = 1.5 over 20 keys puts ~63% of the mass on the two hottest ranks —
  // the head decile must dominate and the tail must be cold.
  EXPECT_GT(skewed.key_deciles[0].requests, config.requests / 3);
  EXPECT_GT(skewed.key_deciles[0].requests, 5 * skewed.key_deciles[9].requests);

  // Uniform control with the same seed: the head decile holds nowhere near
  // a third of the traffic, so the gradient above really is the skew knob.
  config.zipf_s = 0.0;
  const LoadgenReport uniform = run_loadgen(config);
  EXPECT_LT(uniform.key_deciles[0].requests, config.requests / 4);

  const std::string json = loadgen_report_json(config, uniform);
  EXPECT_NE(json.find("\"key_deciles\""), std::string::npos);
  EXPECT_NE(json.find("\"zipf_s\""), std::string::npos);
}

// ---- client retry internals ------------------------------------------------

TEST(ClientRetryBackoff, SeededScheduleReplaysExactly) {
  ClientRetryPolicy policy;
  policy.backoff_base_ms = 10;
  policy.backoff_cap_ms = 500;
  policy.backoff_seed = 7;
  const Request request = rank_request('M', 6);

  const auto schedule = [](const ClientRetryPolicy& p, const Request& r) {
    std::vector<std::uint64_t> out;
    for (unsigned retry = 1; retry <= 6; ++retry) out.push_back(client_retry_backoff_ns(p, r, retry));
    return out;
  };

  // Pure in (policy, request, retry): two computations agree to the nanosecond.
  const std::vector<std::uint64_t> a = schedule(policy, request);
  EXPECT_EQ(a, schedule(policy, request));

  // And it is the BatchRunner schedule verbatim, keyed by the cache key —
  // documented in client.h, depended on by anyone replaying a chaos run.
  BatchPolicy batch;
  batch.backoff_base_ns = policy.backoff_base_ms * 1'000'000ULL;
  batch.backoff_cap_ns = policy.backoff_cap_ms * 1'000'000ULL;
  batch.backoff_seed = policy.backoff_seed;
  for (unsigned retry = 1; retry <= 6; ++retry) {
    EXPECT_EQ(a[retry - 1],
              retry_backoff_ns(batch, static_cast<std::size_t>(request_cache_key(request)), retry));
  }

  // The jitter key de-synchronizes both across seeds and across requests.
  ClientRetryPolicy other_seed = policy;
  other_seed.backoff_seed = 8;
  EXPECT_NE(a, schedule(other_seed, request));
  EXPECT_NE(a, schedule(policy, rank_request('M', 7)));

  // Capped exponential shape: never above the cap, never zero once base > 0.
  for (const std::uint64_t ns : a) {
    EXPECT_GT(ns, 0u);
    EXPECT_LE(ns, policy.backoff_cap_ms * 1'000'000ULL);
  }
}

// A scripted fake daemon: a raw TCP listener that answers each decoded
// request frame with the next action in its script — a typed error frame, an
// OK frame, or a hard close. This pins down request_with_retry()'s exact
// budget accounting without racing a real scheduler.
class ScriptedServer {
 public:
  enum class Action { kOk, kQueueFull, kComputeFailed, kClose };

  explicit ScriptedServer(std::vector<Action> script) : script_(std::move(script)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 8) != 0) {
      ADD_FAILURE() << "scripted listen failed: " << std::strerror(errno);
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { accept_main(); });
  }

  ~ScriptedServer() {
    ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks a pending accept()
    if (thread_.joinable()) thread_.join();
    ::close(listen_fd_);
  }

  std::uint16_t port() const { return port_; }
  unsigned connections_accepted() const { return connections_.load(); }

 private:
  void accept_main() {
    while (next_ < script_.size()) {
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) return;  // listener shut down
      connections_.fetch_add(1);
      serve_connection(conn);
      ::close(conn);
    }
  }

  // Reads frames and plays actions until the script says close, the script
  // runs out, or the client hangs up.
  void serve_connection(int conn) {
    while (next_ < script_.size()) {
      char header_bytes[kFrameHeaderBytes];
      if (!read_exact(conn, header_bytes, sizeof(header_bytes))) return;
      FrameHeader header{};
      try {
        header = decode_frame_header({header_bytes, sizeof(header_bytes)});
      } catch (const ProtocolViolationError&) {
        return;
      }
      std::string payload(header.payload_len, '\0');
      if (header.payload_len > 0 && !read_exact(conn, payload.data(), payload.size())) return;
      const RequestType type = static_cast<RequestType>(header.type);

      std::string frame;
      switch (script_[next_++]) {
        case Action::kOk:
          frame = encode_ok_frame(type, CacheSource::kCold, fnv1a("scripted"), "scripted");
          break;
        case Action::kQueueFull:
          frame = encode_error_frame(type, StatusCode::kQueueFull, "scripted backpressure");
          break;
        case Action::kComputeFailed:
          frame = encode_error_frame(type, StatusCode::kComputeFailed, "scripted failure");
          break;
        case Action::kClose:
          return;  // caller closes: the client sees EOF mid-exchange
      }
      if (!write_all(conn, frame)) return;
    }
  }

  static bool read_exact(int fd, char* data, std::size_t size) {
    std::size_t got = 0;
    while (got < size) {
      const ssize_t n = ::recv(fd, data + got, size - got, 0);
      if (n <= 0) return false;
      got += static_cast<std::size_t>(n);
    }
    return true;
  }

  static bool write_all(int fd, const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::vector<Action> script_;
  std::atomic<std::size_t> next_{0};
  std::atomic<unsigned> connections_{0};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

TEST(ClientRetry, MixedRetryableSequenceConsumesTheBudgetExactly) {
  // QueueFull (retryable status), EOF mid-exchange (retryable transport
  // error), QueueFull again, then success: three retries, one reconnect —
  // exactly the accounting client.h documents.
  ScriptedServer server({ScriptedServer::Action::kQueueFull, ScriptedServer::Action::kClose,
                         ScriptedServer::Action::kQueueFull, ScriptedServer::Action::kOk});
  ServeClient client = ServeClient::connect_tcp(server.port());
  ClientRetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_base_ms = 1;
  policy.backoff_cap_ms = 2;

  const RetryOutcome outcome = client.request_with_retry(rank_request('M', 4), policy);
  EXPECT_EQ(outcome.response.status, StatusCode::kOk);
  EXPECT_EQ(outcome.response.artifact, "scripted");
  EXPECT_EQ(outcome.retries, 3u);
  EXPECT_EQ(outcome.reconnects, 1u);
  EXPECT_EQ(server.connections_accepted(), 2u);
}

TEST(ClientRetry, NonRetryableStatusReturnsWithoutSpendingBudget) {
  ScriptedServer server({ScriptedServer::Action::kComputeFailed});
  ServeClient client = ServeClient::connect_tcp(server.port());
  ClientRetryPolicy policy;
  policy.max_retries = 5;
  policy.backoff_base_ms = 1;

  // ComputeFailed is deterministic — retrying would recompute the same
  // failure — so the budget must stay untouched.
  const RetryOutcome outcome = client.request_with_retry(rank_request('M', 4), policy);
  EXPECT_EQ(outcome.response.status, StatusCode::kComputeFailed);
  EXPECT_EQ(outcome.retries, 0u);
  EXPECT_EQ(outcome.reconnects, 0u);
  EXPECT_EQ(server.connections_accepted(), 1u);
}

TEST(ClientRetry, RepeatedConnectionLossMakesExactlyBudgetPlusOneAttempts) {
  ScriptedServer server({ScriptedServer::Action::kClose, ScriptedServer::Action::kClose,
                         ScriptedServer::Action::kClose});
  ServeClient client = ServeClient::connect_tcp(server.port());
  ClientRetryPolicy policy;
  policy.max_retries = 2;
  policy.backoff_base_ms = 1;
  policy.backoff_cap_ms = 2;

  // max_retries = 2 means three attempts total; the third loss escapes as
  // the typed transport error.
  EXPECT_THROW(client.request_with_retry(rank_request('M', 4), policy), ConnectionLostError);
  EXPECT_EQ(server.connections_accepted(), 3u);
}

}  // namespace
}  // namespace bcclb

// Tests for ℓ0-samplers, AGM graph sketches and sketch-based connectivity.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "bcc/algorithms/sketch_connectivity.h"
#include "common/random.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "sketch/graph_sketch.h"
#include "sketch/l0_sampler.h"

namespace bcclb {
namespace {

TEST(L0Sampler, RecoversSingleton) {
  for (std::uint64_t idx : {0ULL, 7ULL, 999ULL}) {
    L0Sampler s({1000, 42, 0});
    s.update(idx, 1);
    const auto got = s.sample();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, idx);
  }
}

TEST(L0Sampler, ZeroVectorSamplesNothing) {
  L0Sampler s({100, 1, 0});
  EXPECT_TRUE(s.appears_zero());
  EXPECT_FALSE(s.sample().has_value());
  s.update(5, 1);
  s.update(5, -1);
  EXPECT_TRUE(s.appears_zero());
  EXPECT_FALSE(s.sample().has_value());
}

TEST(L0Sampler, CancellationLeavesSurvivor) {
  L0Sampler s({100, 3, 0});
  s.update(10, 1);
  s.update(20, 1);
  s.update(10, -1);
  const auto got = s.sample();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 20u);
}

TEST(L0Sampler, MergeEqualsBatchedUpdates) {
  L0Sampler a({500, 9, 2}), b({500, 9, 2}), both({500, 9, 2});
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t idx = rng.next_below(500);
    const std::int64_t delta = rng.next_bool() ? 1 : -1;
    (i % 2 ? a : b).update(idx, delta);
    both.update(idx, delta);
  }
  a.merge(b);
  EXPECT_EQ(a.serialize(), both.serialize());
}

TEST(L0Sampler, MergeRejectsMismatchedParams) {
  L0Sampler a({100, 1, 0}), b({100, 1, 1}), c({100, 2, 0});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(L0Sampler, SampleSucceedsOnVariedSupports) {
  // Across copies, samples succeed on most supports and always return a true
  // support element.
  int successes = 0;
  const int trials = 60;
  Rng rng(11);
  for (int t = 0; t < trials; ++t) {
    L0Sampler s({4096, 77, static_cast<std::uint32_t>(t)});
    std::set<std::uint64_t> support;
    const int size = 1 + static_cast<int>(rng.next_below(200));
    while (static_cast<int>(support.size()) < size) support.insert(rng.next_below(4096));
    for (std::uint64_t idx : support) s.update(idx, 1);
    const auto got = s.sample();
    if (got) {
      ++successes;
      EXPECT_TRUE(support.count(*got)) << "returned a non-support index";
    }
  }
  EXPECT_GT(successes, trials / 2);
}

TEST(L0Sampler, SerializeRoundTrip) {
  L0Sampler s({256, 13, 1});
  s.update(3, 1);
  s.update(100, -1);
  s.update(200, 1);
  const auto words = s.serialize();
  std::size_t at = 0;
  const L0Sampler back = L0Sampler::deserialize({256, 13, 1}, words, at);
  EXPECT_EQ(at, words.size());
  EXPECT_EQ(back.serialize(), words);
  EXPECT_EQ(back.sample(), s.sample());
}

TEST(GraphSketch, ComponentMergeSamplesBoundaryEdge) {
  // Path 0-1-2-3-4-5; merge sketches of {0,1,2}: boundary is exactly {2,3}.
  const Graph g = path_graph(6);
  const std::uint64_t seed = 99;
  const unsigned copies = 6;
  std::vector<GraphSketch> vs;
  for (VertexId v = 0; v < 6; ++v) {
    vs.push_back(GraphSketch::of_vertex(6, v, g.neighbors(v), seed, copies));
  }
  GraphSketch comp = vs[0];
  comp.merge(vs[1]);
  comp.merge(vs[2]);
  bool found = false;
  for (unsigned k = 0; k < copies && !found; ++k) {
    const auto e = comp.sample_edge(k);
    if (e) {
      EXPECT_EQ(*e, Edge(2, 3));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GraphSketch, WholeGraphSketchIsZero) {
  // Summing all vertices cancels every edge.
  Rng rng(4);
  const Graph g = random_gnp(10, 0.4, rng);
  GraphSketch total(10, 5, 3);
  for (VertexId v = 0; v < 10; ++v) {
    total.merge(GraphSketch::of_vertex(10, v, g.neighbors(v), 5, 3));
  }
  for (unsigned k = 0; k < 3; ++k) {
    EXPECT_FALSE(total.sample_edge(k).has_value());
  }
}

TEST(GraphSketch, SerializeRoundTrip) {
  const Graph g = path_graph(5);
  const GraphSketch s = GraphSketch::of_vertex(5, 2, g.neighbors(2), 7, 4);
  const auto words = s.serialize();
  const GraphSketch back = GraphSketch::deserialize(5, 7, 4, words);
  EXPECT_EQ(back.serialize(), words);
}

class SketchConnectivitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SketchConnectivitySweep, HighSuccessRateOverSeeds) {
  const std::size_t n = GetParam();
  int correct = 0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    Rng rng(1000 * n + t);
    const Graph g = (t % 2 == 0) ? random_one_cycle(n, rng).to_graph()
                                 : random_two_cycle(n, rng).to_graph();
    const bool truly = (t % 2 == 0);
    const BccInstance inst = BccInstance::kt1(g);
    const PublicCoins coins(7000 + 13 * t, 4096);
    BccSimulator sim(inst, 16, &coins);
    const RunResult r =
        sim.run(sketch_connectivity_factory(), SketchConnectivityAlgorithm::max_rounds(n, 16));
    EXPECT_TRUE(r.all_finished);
    if (r.decision == truly) ++correct;
  }
  // Monte Carlo: allow a small number of failures.
  EXPECT_GE(correct, trials - 2) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SketchConnectivitySweep, ::testing::Values(8, 12, 16, 24));

TEST(SketchConnectivity, AllVerticesAgreeOnLabels) {
  Rng rng(21);
  const Graph g = random_two_cycle(14, rng).to_graph();
  const BccInstance inst = BccInstance::kt1(g);
  const PublicCoins coins(5, 4096);
  BccSimulator sim(inst, 16, &coins);
  const RunResult r =
      sim.run(sketch_connectivity_factory(), SketchConnectivityAlgorithm::max_rounds(14, 16));
  // Labels must be internally consistent: same component -> same label.
  const auto truth = component_labels(g);
  std::map<VertexId, std::uint64_t> label_of_comp;
  for (VertexId v = 0; v < 14; ++v) {
    ASSERT_TRUE(r.labels[v].has_value());
    const auto [it, inserted] = label_of_comp.emplace(truth[v], *r.labels[v]);
    if (!inserted) {
      EXPECT_EQ(it->second, *r.labels[v]);
    }
  }
}

TEST(SketchConnectivity, PrivateCoinsBreakTheSharedSketches) {
  // The AGM construction needs PUBLIC coins: with private streams the
  // vertices build incompatible hash functions and the merged "component
  // sketches" are garbage. The Monte Carlo guarantee must visibly fail.
  int correct = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    Rng rng(500 + t);
    const Graph g = (t % 2 == 0) ? random_one_cycle(12, rng).to_graph()
                                 : random_two_cycle(12, rng).to_graph();
    BccSimulator sim(BccInstance::kt1(g), 16);
    sim.use_private_coins(900 + t);
    const RunResult r =
        sim.run(sketch_connectivity_factory(), SketchConnectivityAlgorithm::max_rounds(12, 16));
    if (r.all_finished && r.decision == (t % 2 == 0)) ++correct;
  }
  // With working sketches this would be >= 8/10 (as the public-coin sweep
  // shows); broken sketches cannot reach that reliability.
  EXPECT_LT(correct, 8);
}

TEST(SketchConnectivity, NeedsCoins) {
  const Graph g = path_graph(6);
  const BccInstance inst = BccInstance::kt1(g);
  BccSimulator sim(inst, 16);
  EXPECT_THROW(sim.run(sketch_connectivity_factory(), 100), std::invalid_argument);
}

}  // namespace
}  // namespace bcclb

// SoaRoundEngine vs RoundEngine: the equivalence contract that pins the SoA
// scale path to the per-vertex reference engine — identical round-major
// transcript digests, decisions, labels, and fault audit logs on every
// instance both can run — plus the SoaBroadcasts buffer unit tests, thread
// invariance, BatchRunner::run_implicit, and the 10^5 scale smoke.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bcc/algorithms/min_id_flood.h"
#include "bcc/batch_runner.h"
#include "bcc/faults.h"
#include "bcc/instance_view.h"
#include "bcc/round_engine.h"
#include "bcc/soa_engine.h"
#include "common/errors.h"

namespace bcclb {
namespace {

// ---- SoaBroadcasts ----------------------------------------------------------

TEST(SoaBroadcasts, TracksBitsIncrementallyAndValidatesWrites) {
  SoaBroadcasts out;
  out.reset(4, 8);
  EXPECT_EQ(out.round_bits(), 0u);
  for (VertexId v = 0; v < 4; ++v) EXPECT_TRUE(out.is_silent(v));

  out.set_bits(0, 0b101, 3);
  out.set_bits(1, 0xff, 8);
  EXPECT_EQ(out.round_bits(), 11u);
  // Rewriting a slot replaces its contribution; silencing removes it.
  out.set_bits(0, 1, 5);
  EXPECT_EQ(out.round_bits(), 13u);
  out.set_silent(1);
  EXPECT_EQ(out.round_bits(), 5u);

  EXPECT_EQ(out.value(0), 1u);
  EXPECT_EQ(out.num_bits(0), 5u);
  EXPECT_THROW(out.value(1), std::invalid_argument);  // silent, like Message::value
  EXPECT_EQ(out.message(0), Message::bits(1, 5));
  EXPECT_EQ(out.message(1), Message::silent());

  EXPECT_THROW(out.set_bits(2, 0, 0), std::invalid_argument);   // len < 1
  EXPECT_THROW(out.set_bits(2, 0b100, 2), std::invalid_argument);  // value doesn't fit
  EXPECT_THROW(out.set_bits(2, 0, 9), BandwidthViolationError);    // len > bandwidth

  // Failed writes must not corrupt the running total.
  EXPECT_EQ(out.round_bits(), 5u);
}

// ---- helpers ----------------------------------------------------------------

unsigned flood_bandwidth(std::uint64_t n) {
  return std::max(1u, static_cast<unsigned>(std::bit_width(n - 1)));
}

std::vector<ImplicitSpec> equivalence_specs() {
  std::vector<ImplicitSpec> specs;
  for (const std::uint64_t n : {6ull, 9ull, 12ull}) {
    for (const ImplicitFamily family :
         {ImplicitFamily::kOneCycle, ImplicitFamily::kTwoCycle, ImplicitFamily::kMultiCycle,
          ImplicitFamily::kRandomRegular}) {
      if (family == ImplicitFamily::kMultiCycle && n < 9) continue;
      ImplicitSpec spec;
      spec.n = n;
      spec.family = family;
      spec.seed = 2019 + n;
      specs.push_back(spec);
    }
  }
  return specs;
}

struct ExplicitOutcome {
  RunResult result;
  std::vector<std::uint64_t> labels;
};

ExplicitOutcome run_explicit(const BccInstance& instance, unsigned bandwidth,
                             const FaultPlan* plan) {
  RoundEngine engine;
  RunOptions options;
  options.faults = plan;
  ExplicitOutcome out{engine.run(instance, bandwidth, min_id_flood_factory(),
                                 MinIdFloodAlgorithm::rounds_needed(instance.num_vertices()),
                                 options),
                      {}};
  for (const auto& label : out.result.labels) {
    out.labels.push_back(label.value());
  }
  return out;
}

struct SoaOutcome {
  SoaRunResult result;
  std::vector<std::uint64_t> labels;
};

SoaOutcome run_soa(const InstanceView& view, unsigned bandwidth, unsigned threads,
                   const FaultPlan* plan) {
  SoaMinIdFlood program;
  SoaRoundEngine engine;
  SoaRunOptions options;
  options.faults = plan;
  options.digest_transcript = true;
  options.threads = threads;
  SoaOutcome out{engine.run(view, bandwidth, program,
                            SoaMinIdFlood::rounds_needed(view.num_vertices()), options),
                 {}};
  for (VertexId v = 0; v < view.num_vertices(); ++v) {
    out.labels.push_back(program.label_of(v));
  }
  return out;
}

void expect_equivalent(const ExplicitOutcome& ref, const SoaOutcome& soa,
                       const std::string& context) {
  EXPECT_EQ(ref.result.transcript.round_major_digest(), soa.result.transcript_digest)
      << context;
  EXPECT_EQ(ref.result.rounds_executed, soa.result.rounds_executed) << context;
  EXPECT_EQ(ref.result.all_finished, soa.result.all_finished) << context;
  EXPECT_EQ(ref.result.decision, soa.result.decision) << context;
  EXPECT_EQ(ref.result.total_bits_broadcast, soa.result.total_bits_broadcast) << context;
  EXPECT_EQ(ref.labels, soa.labels) << context;

  // The fault audit logs must match event for event.
  ASSERT_EQ(ref.result.faults_applied.size(), soa.result.faults_applied.size()) << context;
  for (std::size_t i = 0; i < ref.result.faults_applied.size(); ++i) {
    const AppliedFault& a = ref.result.faults_applied[i];
    const AppliedFault& b = soa.result.faults_applied[i];
    EXPECT_EQ(a.round, b.round) << context << " fault " << i;
    EXPECT_EQ(a.vertex, b.vertex) << context << " fault " << i;
    EXPECT_EQ(a.kind, b.kind) << context << " fault " << i;
    EXPECT_EQ(a.before, b.before) << context << " fault " << i;
    EXPECT_EQ(a.after, b.after) << context << " fault " << i;
  }
  EXPECT_EQ(ref.result.crashed_vertices, soa.result.crashed_vertices) << context;
}

std::string context_of(const ImplicitSpec& spec) {
  return std::string(implicit_family_name(spec.family)) + " n=" + std::to_string(spec.n) +
         " seed=" + std::to_string(spec.seed);
}

// ---- fault-free equivalence -------------------------------------------------

TEST(SoaEquivalence, MatchesExplicitEngineBitForBitAcrossFamiliesAndThreads) {
  for (const ImplicitSpec& spec : equivalence_specs()) {
    const InstanceView view(spec);
    const BccInstance mat = view.to_explicit();
    const unsigned bw = flood_bandwidth(spec.n);
    const ExplicitOutcome ref = run_explicit(mat, bw, nullptr);
    ASSERT_TRUE(ref.result.all_finished) << context_of(spec);

    for (const unsigned threads : {1u, 2u, 8u}) {
      const SoaOutcome soa = run_soa(view, bw, threads, nullptr);
      expect_equivalent(ref, soa, context_of(spec) + " threads=" + std::to_string(threads));
    }

    // The SoA engine over the *explicit* wrapper must agree too: the seam is
    // representation-independent.
    const SoaOutcome wrapped = run_soa(InstanceView(&mat), bw, 1, nullptr);
    expect_equivalent(ref, wrapped, context_of(spec) + " explicit-wrapped");
  }
}

TEST(SoaEquivalence, DecisionMatchesGroundTruthOnCycleFamilies) {
  for (const ImplicitSpec& spec : equivalence_specs()) {
    if (spec.family == ImplicitFamily::kRandomRegular) continue;
    const InstanceView view(spec);
    SoaMinIdFlood program;
    SoaRoundEngine engine;
    const SoaRunResult result = engine.run(view, flood_bandwidth(spec.n), program,
                                           SoaMinIdFlood::rounds_needed(spec.n));
    const std::uint64_t expected = view.implicit_instance()->num_components();
    EXPECT_EQ(result.decision, expected == 1) << context_of(spec);
    EXPECT_EQ(program.num_components(), expected) << context_of(spec);
  }
}

// ---- fault equivalence ------------------------------------------------------

TEST(SoaEquivalence, FlipAndByzantineFaultsReplayIdentically) {
  ImplicitSpec spec;
  spec.n = 12;
  spec.family = ImplicitFamily::kTwoCycle;
  spec.seed = 7;
  const unsigned bw = flood_bandwidth(spec.n);

  FaultPlan plan;
  plan.flip(3, 1, 0b0101).flip(9, 4, 0b1000).byzantine(5, 2, 0b1110, bw);

  const InstanceView view(spec);
  const BccInstance mat = view.to_explicit();
  const ExplicitOutcome ref = run_explicit(mat, bw, &plan);
  EXPECT_EQ(ref.result.faults_applied.size(), 3u);

  for (const unsigned threads : {1u, 2u, 8u}) {
    const SoaOutcome soa = run_soa(view, bw, threads, &plan);
    expect_equivalent(ref, soa, "faulted threads=" + std::to_string(threads));
  }
}

TEST(SoaEquivalence, CrashAndDropAreReadErrorsInBothEngines) {
  // Min-ID flood reads every input-edge wire each round; a crash or drop
  // puts silence on a read wire, and both engines surface that as the same
  // Message::value()/SoaBroadcasts::value() invalid_argument.
  ImplicitSpec spec;
  spec.n = 9;
  spec.family = ImplicitFamily::kOneCycle;
  const unsigned bw = flood_bandwidth(spec.n);
  const InstanceView view(spec);
  const BccInstance mat = view.to_explicit();

  for (const bool use_crash : {true, false}) {
    FaultPlan plan;
    if (use_crash) {
      plan.crash(4, 2);
    } else {
      plan.drop(4, 2);
    }
    EXPECT_THROW(run_explicit(mat, bw, &plan), std::invalid_argument) << use_crash;
    EXPECT_THROW(run_soa(view, bw, 1, &plan), std::invalid_argument) << use_crash;
  }
}

TEST(SoaEquivalence, ExactModeMatchesFrontierModeOnTheWire) {
  // A byzantine event that forges exactly what the vertex would broadcast
  // anyway (vertex 0 holds the global-minimum ID, so its label is 0 in
  // every round) leaves the wire unchanged but forces the SoA program onto
  // the dense exact path — so this pins frontier execution to the dense
  // computation through the transcript digest.
  ImplicitSpec spec;
  spec.n = 12;
  spec.family = ImplicitFamily::kMultiCycle;
  spec.cycles = 3;
  const unsigned bw = flood_bandwidth(spec.n);
  const InstanceView view(spec);

  FaultPlan noop;
  noop.byzantine(0, 1, 0, bw);

  const SoaOutcome frontier = run_soa(view, bw, 1, nullptr);
  const SoaOutcome exact = run_soa(view, bw, 1, &noop);
  EXPECT_EQ(frontier.result.transcript_digest, exact.result.transcript_digest);
  EXPECT_EQ(frontier.result.total_bits_broadcast, exact.result.total_bits_broadcast);
  EXPECT_EQ(frontier.labels, exact.labels);
  EXPECT_EQ(frontier.result.decision, exact.result.decision);
  // The injector audits only events that changed the wire, so a forged
  // message equal to the genuine one leaves the log empty.
  EXPECT_TRUE(exact.result.faults_applied.empty());
}

// ---- thread invariance at mid scale -----------------------------------------

TEST(SoaEquivalence, LabelsDigestIsThreadInvariantAtTwentyThousand) {
  ImplicitSpec spec;
  spec.n = 20000;
  spec.family = ImplicitFamily::kTwoCycle;
  spec.seed = 3;
  const InstanceView view(spec);
  const unsigned bw = flood_bandwidth(spec.n);

  SoaRunResult serial;
  for (const unsigned threads : {1u, 2u, 8u}) {
    SoaMinIdFlood program;
    SoaRoundEngine engine;
    SoaRunOptions options;
    options.threads = threads;
    const SoaRunResult result =
        engine.run(view, bw, program, SoaMinIdFlood::rounds_needed(spec.n), options);
    if (threads == 1) {
      serial = result;
      EXPECT_FALSE(result.decision);
      EXPECT_EQ(program.num_components(), 2u);
      continue;
    }
    EXPECT_EQ(result.labels_digest, serial.labels_digest) << threads;
    EXPECT_EQ(result.decision, serial.decision) << threads;
    EXPECT_EQ(result.rounds_executed, serial.rounds_executed) << threads;
    EXPECT_EQ(result.total_bits_broadcast, serial.total_bits_broadcast) << threads;
  }
}

// ---- scale smoke ------------------------------------------------------------

TEST(SoaScale, HundredThousandVerticesStayLinearInMemory) {
  ImplicitSpec spec;
  spec.n = 100000;
  spec.family = ImplicitFamily::kTwoCycle;
  spec.seed = 2019;
  const InstanceView view(spec);
  const unsigned bw = flood_bandwidth(spec.n);

  SoaMinIdFlood program;
  SoaRoundEngine engine;
  SoaRunOptions options;
  options.require_all_finished = true;
  const SoaRunResult result =
      engine.run(view, bw, program, SoaMinIdFlood::rounds_needed(spec.n), options);

  EXPECT_TRUE(result.all_finished);
  EXPECT_FALSE(result.decision);  // two components
  EXPECT_EQ(program.num_components(), 2u);
  EXPECT_EQ(result.rounds_executed, spec.n);
  // O(n) memory: outbox + program state together stay under 200 bytes per
  // vertex (an explicit instance's wiring alone would be 40 GB here).
  EXPECT_LT(result.stats.peak_buffer_bytes, 200u * spec.n);
}

// ---- BatchRunner ------------------------------------------------------------

TEST(SoaBatch, RunImplicitIsThreadCountInvariantAndMatchesSerialEngine) {
  std::vector<SoaBatchJob> jobs;
  for (const ImplicitSpec& spec : equivalence_specs()) {
    SoaBatchJob job;
    job.spec = spec;
    job.factory = soa_min_id_flood_factory();
    job.bandwidth = flood_bandwidth(spec.n);
    job.max_rounds = SoaMinIdFlood::rounds_needed(spec.n);
    job.digest_transcript = true;
    jobs.push_back(std::move(job));
  }

  const std::vector<SoaRunResult> serial = BatchRunner(1).run_implicit(jobs);
  const std::vector<SoaRunResult> parallel = BatchRunner(4).run_implicit(jobs);
  ASSERT_EQ(serial.size(), jobs.size());
  ASSERT_EQ(parallel.size(), jobs.size());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const std::string context = context_of(jobs[i].spec);
    // Batch output matches a hand-driven engine on the same spec...
    const SoaOutcome direct = run_soa(InstanceView(jobs[i].spec), jobs[i].bandwidth, 1, nullptr);
    EXPECT_EQ(serial[i].transcript_digest, direct.result.transcript_digest) << context;
    EXPECT_EQ(serial[i].labels_digest, direct.result.labels_digest) << context;
    EXPECT_EQ(serial[i].decision, direct.result.decision) << context;
    // ...and is invariant under the worker pool width.
    EXPECT_EQ(parallel[i].transcript_digest, serial[i].transcript_digest) << context;
    EXPECT_EQ(parallel[i].labels_digest, serial[i].labels_digest) << context;
    EXPECT_EQ(parallel[i].rounds_executed, serial[i].rounds_executed) << context;
    EXPECT_EQ(parallel[i].total_bits_broadcast, serial[i].total_bits_broadcast) << context;
  }
}

}  // namespace
}  // namespace bcclb

// Out-of-core tiled rank (linalg/tiled_rank.h): tile generation vs the dense
// join matrix, tiled rank vs the dense eliminators, thread/tiling
// invariance, checkpointed kill-free resume identity, corruption detection,
// and memory-budget behaviour.

#include "linalg/tiled_rank.h"

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>

#include "bcc/checkpoint.h"
#include "common/errors.h"
#include "linalg/gf2_matrix.h"
#include "partition/bell.h"
#include "partition/join_matrix.h"

namespace bcclb {
namespace {

std::string test_dir(const std::string& suffix = "") {
  const ::testing::TestInfo* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir() + "bcclb_rank_" + info->test_suite_name() + "_" +
                    info->name() + suffix;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TiledRankConfig base_config(std::size_t n, RankField field, std::size_t tile_rows) {
  TiledRankConfig cfg;
  cfg.n = n;
  cfg.field = field;
  cfg.tile_rows = tile_rows;
  cfg.threads = 1;
  return cfg;
}

TEST(JoinTile, MatchesDenseJoinMatrix) {
  for (std::size_t n = 1; n <= 6; ++n) {
    const BoolMatrix dense = partition_join_matrix(n);
    const std::size_t bell = dense.rows;
    // A few representative windows, including ragged boundaries.
    const std::size_t windows[][2] = {{0, bell}, {0, 1}, {bell / 3, bell / 2 + 1}, {bell - 1, bell}};
    for (const auto& w : windows) {
      const JoinTile tile = generate_join_tile(n, w[0], w[1], 1);
      ASSERT_EQ(tile.rows, w[1] - w[0]);
      ASSERT_EQ(tile.cols, bell);
      for (std::size_t r = 0; r < tile.rows; ++r) {
        for (std::size_t c = 0; c < bell; ++c) {
          ASSERT_EQ(tile.get(r, c), dense.at(w[0] + r, c) != 0)
              << "n=" << n << " row " << w[0] + r << " col " << c;
        }
      }
    }
  }
}

TEST(JoinTile, ThreadCountDoesNotChangeBits) {
  const JoinTile one = generate_join_tile(7, 100, 612, 1);
  for (unsigned threads : {2u, 3u, 8u}) {
    const JoinTile t = generate_join_tile(7, 100, 612, threads);
    EXPECT_EQ(t.bits, one.bits);
    EXPECT_EQ(t.digest, one.digest);
    EXPECT_EQ(t.ones, one.ones);
  }
}

TEST(JoinTile, RangeGuards) {
  EXPECT_THROW(generate_join_tile(0, 0, 0), RangeViolationError);
  EXPECT_THROW(generate_join_tile(26, 0, 1), RangeViolationError);
  EXPECT_THROW(generate_join_tile(5, 3, 2), RangeViolationError);
  EXPECT_THROW(generate_join_tile(5, 0, bell_number_u64(5) + 1), RangeViolationError);
}

TEST(JoinTileRank, MatchesDenseRankOfTheSameRows) {
  const BoolMatrix dense = partition_join_matrix(6);
  const JoinTile tile = generate_join_tile(6, 50, 150, 1);
  BoolMatrix sub;
  sub.rows = tile.rows;
  sub.cols = tile.cols;
  sub.data.assign(sub.rows * sub.cols, 0);
  for (std::size_t r = 0; r < sub.rows; ++r) {
    for (std::size_t c = 0; c < sub.cols; ++c) sub.at(r, c) = dense.at(50 + r, c);
  }
  EXPECT_EQ(join_tile_rank(tile, RankField::kGf2, 0),
            Gf2Matrix::from_bool_matrix(sub).rank());
  EXPECT_EQ(join_tile_rank(tile, RankField::kModp, kPrime30A),
            ModpMatrix::from_bool_matrix(sub, kPrime30A).rank());
}

TEST(TiledRank, Gf2MatchesDenseUpToM8) {
  // GF(2) rank of M_n is 2^{n-1} (rank-deficient — why the certificate rests
  // on mod p); tiled elimination must agree with the dense four-Russians
  // path exactly.
  for (std::size_t n = 1; n <= 8; ++n) {
    const std::size_t dense_rank = Gf2Matrix::from_bool_matrix(partition_join_matrix(n)).rank();
    const TiledRankReport report = tiled_partition_rank(base_config(n, RankField::kGf2, 97));
    EXPECT_TRUE(report.complete);
    EXPECT_EQ(report.rank, dense_rank) << "n=" << n;
    EXPECT_EQ(report.rank, std::size_t{1} << (n - 1)) << "n=" << n;
    EXPECT_EQ(report.dimension, bell_number_u64(n));
  }
}

TEST(TiledRank, ModpMatchesDenseUpToM7) {
  for (std::size_t n = 1; n <= 7; ++n) {
    const std::size_t dense_rank =
        ModpMatrix::from_bool_matrix(partition_join_matrix(n), kPrime30A).rank();
    const TiledRankReport report = tiled_partition_rank(base_config(n, RankField::kModp, 128));
    EXPECT_TRUE(report.complete);
    EXPECT_EQ(report.rank, dense_rank) << "n=" << n;
    // Theorem 2.3: M_n is full rank over Q, and these primes do not divide
    // the determinantal divisors.
    EXPECT_TRUE(report.full_rank) << "n=" << n;
    EXPECT_EQ(report.rank, bell_number_u64(n));
  }
}

TEST(TiledRank, BothPrimesAgree) {
  TiledRankConfig cfg = base_config(6, RankField::kModp, 50);
  cfg.prime = kPrime30A;
  const TiledRankReport a = tiled_partition_rank(cfg);
  cfg.prime = kPrime30B;
  const TiledRankReport b = tiled_partition_rank(cfg);
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_EQ(a.rank, bell_number_u64(6));
  // The chain hashes the prime via the header, so certificates differ.
  EXPECT_NE(a.certificate_digest, b.certificate_digest);
}

TEST(TiledRank, ThreadCountDoesNotChangeCertificate) {
  TiledRankConfig cfg = base_config(7, RankField::kModp, 100);
  cfg.threads = 1;
  const TiledRankReport one = tiled_partition_rank(cfg);
  for (unsigned threads : {2u, 8u}) {
    cfg.threads = threads;
    const TiledRankReport t = tiled_partition_rank(cfg);
    EXPECT_EQ(t.rank, one.rank);
    EXPECT_EQ(t.certificate_digest, one.certificate_digest);
  }
  EXPECT_TRUE(one.full_rank);
}

TEST(TiledRank, TileShapeDoesNotChangeRank) {
  std::size_t expect = bell_number_u64(6);  // 203
  for (const std::size_t tile_rows : {1ul, 7ul, 64ul, 203ul, 512ul}) {
    const TiledRankReport report =
        tiled_partition_rank(base_config(6, RankField::kModp, tile_rows));
    EXPECT_EQ(report.rank, expect) << "tile_rows=" << tile_rows;
    EXPECT_EQ(report.tiles_total, (203 + tile_rows - 1) / tile_rows);
  }
}

TEST(TiledRank, CheckpointedRunResumesBitIdentical) {
  const std::string dir_a = test_dir("_a");
  const std::string dir_b = test_dir("_b");

  TiledRankConfig cfg = base_config(7, RankField::kModp, 100);  // 9 tiles
  cfg.dir = dir_a;
  const TiledRankReport uninterrupted = tiled_partition_rank(cfg);
  EXPECT_TRUE(uninterrupted.complete);
  EXPECT_TRUE(uninterrupted.full_rank);

  // Same campaign in dir_b, stopped after 2 tiles, then resumed to the end.
  cfg.dir = dir_b;
  cfg.stop_after_tiles = 2;
  const TiledRankReport stopped = tiled_partition_rank(cfg);
  EXPECT_FALSE(stopped.complete);
  EXPECT_EQ(stopped.tiles_run, 2u);

  cfg.stop_after_tiles = 0;
  cfg.resume = true;
  const TiledRankReport resumed = tiled_partition_rank(cfg);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.tiles_resumed, 2u);
  EXPECT_EQ(resumed.tiles_run, uninterrupted.tiles_total - 2);
  EXPECT_EQ(resumed.rank, uninterrupted.rank);
  EXPECT_EQ(resumed.certificate_digest, uninterrupted.certificate_digest);

  // Resuming a finished run is a no-op that reports the same certificate.
  const TiledRankReport again = tiled_partition_rank(cfg);
  EXPECT_TRUE(again.complete);
  EXPECT_EQ(again.tiles_run, 0u);
  EXPECT_EQ(again.rank, uninterrupted.rank);
  EXPECT_EQ(again.certificate_digest, uninterrupted.certificate_digest);
}

TEST(TiledRank, RefusesToClobberAndRequiresCheckpointForResume) {
  const std::string dir = test_dir();
  TiledRankConfig cfg = base_config(5, RankField::kGf2, 13);
  cfg.dir = dir;
  cfg.resume = true;
  EXPECT_THROW(tiled_partition_rank(cfg), CheckpointError);  // nothing to resume
  cfg.resume = false;
  tiled_partition_rank(cfg);
  EXPECT_THROW(tiled_partition_rank(cfg), CheckpointError);  // refuses clobber
  cfg.resume = false;
  cfg.dir.clear();
  cfg.resume = true;
  EXPECT_THROW(tiled_partition_rank(cfg), CheckpointError);  // resume needs a dir
}

TEST(TiledRank, CorruptSegmentIsDetectedOnResume) {
  const std::string dir = test_dir();
  TiledRankConfig cfg = base_config(6, RankField::kModp, 50);
  cfg.dir = dir;
  cfg.stop_after_tiles = 2;
  tiled_partition_rank(cfg);

  // Flip one byte in the first segment; the recorded digest must catch it.
  const std::string seg = rank_segment_path(dir, 0);
  std::string bytes;
  {
    std::ifstream in(seg, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  {
    std::ofstream out(seg, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  cfg.stop_after_tiles = 0;
  cfg.resume = true;
  EXPECT_THROW(tiled_partition_rank(cfg), CheckpointError);
}

TEST(TiledRank, TamperedCheckpointIsDetected) {
  const std::string dir = test_dir();
  TiledRankConfig cfg = base_config(5, RankField::kGf2, 13);
  cfg.dir = dir;
  cfg.stop_after_tiles = 1;
  tiled_partition_rank(cfg);
  const std::string path = rank_checkpoint_path(dir);
  std::string snapshot;
  {
    std::ifstream in(path, std::ios::binary);
    snapshot.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  // Hand-edit the claimed rank; the FNV trailer no longer matches.
  const std::size_t pos = snapshot.find("rank ");
  ASSERT_NE(pos, std::string::npos);
  snapshot[pos + 5] = snapshot[pos + 5] == '9' ? '8' : '9';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(snapshot.data(), static_cast<std::streamsize>(snapshot.size()));
  }
  cfg.resume = true;
  cfg.stop_after_tiles = 0;
  EXPECT_THROW(tiled_partition_rank(cfg), CheckpointError);
}

TEST(TiledRank, ResumeRejectsMismatchedConfiguration) {
  const std::string dir = test_dir();
  TiledRankConfig cfg = base_config(6, RankField::kModp, 50);
  cfg.dir = dir;
  cfg.stop_after_tiles = 1;
  tiled_partition_rank(cfg);
  cfg.resume = true;
  cfg.stop_after_tiles = 0;
  TiledRankConfig other = cfg;
  other.tile_rows = 64;
  EXPECT_THROW(tiled_partition_rank(other), CheckpointError);
  other = cfg;
  other.prime = kPrime30B;
  EXPECT_THROW(tiled_partition_rank(other), CheckpointError);
  other = cfg;
  other.field = RankField::kGf2;
  EXPECT_THROW(tiled_partition_rank(other), CheckpointError);
}

TEST(TiledRank, MemoryBudgetShrinksChunksNotResults) {
  const std::string dir = test_dir();
  TiledRankConfig cfg = base_config(7, RankField::kModp, 64);
  const TiledRankReport unlimited = tiled_partition_rank(cfg);

  // Tight budget: one 64-row mod-p tile of M_7 needs ~64 * 877 * 4 bytes
  // working + staging + bits; 2 MiB forces the smallest chunk sizes.
  cfg.dir = dir;
  cfg.mem_budget_bytes = 2ULL << 20;
  const TiledRankReport tight = tiled_partition_rank(cfg);
  EXPECT_EQ(tight.rank, unlimited.rank);
  EXPECT_TRUE(tight.full_rank);
  EXPECT_LE(tight.peak_resident_bytes, cfg.mem_budget_bytes);

  // A budget no tile can fit is a typed refusal naming budget and footprint.
  TiledRankConfig starved = base_config(7, RankField::kModp, 64);
  starved.mem_budget_bytes = 64 << 10;
  try {
    tiled_partition_rank(starved);
    FAIL() << "expected ResourceBudgetError";
  } catch (const ResourceBudgetError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("budget"), std::string::npos) << what;
    EXPECT_NE(what.find("tile-rows"), std::string::npos) << what;
  }
}

TEST(TiledRank, InterruptFlagStopsBetweenTiles) {
  volatile std::sig_atomic_t flag = 0;
  TiledRankConfig cfg = base_config(6, RankField::kModp, 50);
  cfg.dir = test_dir();
  cfg.interrupt = &flag;
  std::size_t fired = 0;
  cfg.progress = [&](std::size_t done, std::size_t, std::size_t) {
    fired = done;
    flag = 1;  // raise after the first tile completes
  };
  const TiledRankReport report = tiled_partition_rank(cfg);
  EXPECT_EQ(fired, 1u);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.tiles_run, 1u);

  // The interrupt left a valid checkpoint: resume finishes the job with the
  // canonical certificate.
  cfg.interrupt = nullptr;
  cfg.progress = nullptr;
  cfg.resume = true;
  const TiledRankReport resumed = tiled_partition_rank(cfg);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.rank, bell_number_u64(6));
  const TiledRankReport clean = tiled_partition_rank(base_config(6, RankField::kModp, 50));
  EXPECT_EQ(resumed.rank, clean.rank);
}

TEST(TiledRank, FieldNamesRoundTrip) {
  EXPECT_STREQ(rank_field_name(RankField::kGf2), "gf2");
  EXPECT_STREQ(rank_field_name(RankField::kModp), "modp");
  EXPECT_EQ(parse_rank_field("gf2"), RankField::kGf2);
  EXPECT_EQ(parse_rank_field("modp"), RankField::kModp);
  EXPECT_EQ(parse_rank_field("gf3"), std::nullopt);
}

}  // namespace
}  // namespace bcclb

// Unranking (partition/unrank.h): exact inverse of partition_index, slice
// streaming vs all_partitions, typed range guards.

#include "partition/unrank.h"

#include <gtest/gtest.h>

#include <random>

#include "common/errors.h"
#include "partition/bell.h"
#include "partition/enumeration.h"
#include "partition/join_matrix.h"

namespace bcclb {
namespace {

TEST(Unrank, MatchesEnumerationOrderExhaustively) {
  for (std::size_t n = 1; n <= 8; ++n) {
    const std::vector<SetPartition> all = all_partitions(n);
    ASSERT_EQ(all.size(), bell_number_u64(n));
    for (std::size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(unrank_partition(n, i).rgs(), all[i].rgs()) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Unrank, RoundTripsWithPartitionIndexFuzz) {
  // Seeded random indices i < B_n for every n up to 11: unranking then
  // ranking must reproduce i exactly (the satellite fuzz contract).
  std::mt19937_64 rng(20190729);
  for (std::size_t n = 1; n <= 11; ++n) {
    const std::uint64_t bell = checked_bell_u64(n);
    std::uniform_int_distribution<std::uint64_t> dist(0, bell - 1);
    for (int trial = 0; trial < 500; ++trial) {
      const std::uint64_t i = dist(rng);
      const SetPartition p = unrank_partition(n, i);
      EXPECT_EQ(partition_index(p), i) << "n=" << n << " i=" << i;
    }
    // Boundaries are the likeliest off-by-one sites.
    EXPECT_EQ(partition_index(unrank_partition(n, 0)), 0u);
    EXPECT_EQ(partition_index(unrank_partition(n, bell - 1)), bell - 1);
  }
}

TEST(Unrank, RoundTripsFromPartitionSide) {
  for (std::size_t n : {1, 4, 7}) {
    for (const SetPartition& p : all_partitions(n)) {
      EXPECT_EQ(unrank_partition(n, partition_index(p)).rgs(), p.rgs());
    }
  }
}

TEST(Unrank, LargeNStaysExact) {
  // n = 25 is the u64 ceiling; the extremes must still invert exactly.
  const std::uint64_t bell = checked_bell_u64(25);
  EXPECT_EQ(bell, bell_number_u64(25));
  for (const std::uint64_t i :
       {std::uint64_t{0}, std::uint64_t{1}, bell / 3, bell / 2, bell - 2, bell - 1}) {
    EXPECT_EQ(partition_index(unrank_partition(25, i)), i);
  }
}

TEST(Unrank, TypedRangeErrors) {
  std::vector<std::uint32_t> rgs;
  EXPECT_THROW(unrank_rgs(0, 0, rgs), RangeViolationError);
  EXPECT_THROW(unrank_rgs(26, 0, rgs), RangeViolationError);
  EXPECT_THROW(unrank_partition(3, 5), RangeViolationError);  // B_3 = 5
  EXPECT_THROW(checked_bell_u64(0), RangeViolationError);
  EXPECT_THROW(checked_bell_u64(26), RangeViolationError);
  EXPECT_THROW(rgs_extension_count(25, 1), RangeViolationError);
  EXPECT_EQ(rgs_extension_count(24, 0), bell_number_u64(25));
}

TEST(PartitionSlice, FullRangeReproducesAllPartitions) {
  for (std::size_t n = 1; n <= 8; ++n) {
    const std::vector<SetPartition> all = all_partitions(n);
    PartitionSlice slice(n, 0, checked_bell_u64(n));
    std::size_t i = 0;
    while (slice.next()) {
      ASSERT_LT(i, all.size());
      EXPECT_EQ(slice.rgs(), all[i].rgs()) << "n=" << n << " i=" << i;
      EXPECT_EQ(slice.index(), i);
      ++i;
    }
    EXPECT_EQ(i, all.size());
    EXPECT_FALSE(slice.next());
  }
}

TEST(PartitionSlice, ConcatenatedSlicesCoverTheWholeOrder) {
  const std::size_t n = 7;
  const std::uint64_t bell = checked_bell_u64(n);  // 877
  const std::vector<SetPartition> all = all_partitions(n);
  for (const std::uint64_t tile : {std::uint64_t{1}, std::uint64_t{64}, std::uint64_t{500}}) {
    std::size_t i = 0;
    for (std::uint64_t lo = 0; lo < bell; lo += tile) {
      PartitionSlice slice(n, lo, std::min(bell, lo + tile));
      while (slice.next()) {
        ASSERT_LT(i, all.size());
        EXPECT_EQ(slice.rgs(), all[i].rgs());
        ++i;
      }
    }
    EXPECT_EQ(i, all.size());
  }
}

TEST(PartitionSlice, MidRangeSliceNeedsNoPredecessors) {
  const std::size_t n = 10;  // B_10 = 115975: far past what a test would enumerate
  const std::uint64_t lo = 100000;
  PartitionSlice slice(n, lo, lo + 3);
  EXPECT_EQ(slice.remaining(), 3u);
  std::size_t count = 0;
  while (slice.next()) {
    EXPECT_EQ(partition_index(SetPartition(slice.rgs())), lo + count);
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(PartitionSlice, EmptyAndInvalidRanges) {
  PartitionSlice empty(5, 10, 10);
  EXPECT_FALSE(empty.next());
  EXPECT_THROW(PartitionSlice(5, 3, 2), RangeViolationError);
  EXPECT_THROW(PartitionSlice(5, 0, bell_number_u64(5) + 1), RangeViolationError);
  EXPECT_THROW(PartitionSlice(0, 0, 0), RangeViolationError);
}

TEST(Guards, AllPartitionsRefusesOversizedN) {
  try {
    all_partitions(13);
    FAIL() << "expected RangeViolationError";
  } catch (const RangeViolationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("B_13"), std::string::npos) << what;
    EXPECT_NE(what.find("PartitionSlice"), std::string::npos) << what;
  }
}

TEST(Guards, DenseJoinMatrixRefusesOversizedN) {
  try {
    partition_join_matrix(9);
    FAIL() << "expected RangeViolationError";
  } catch (const RangeViolationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("M_9"), std::string::npos) << what;
    EXPECT_NE(what.find("GiB"), std::string::npos) << what;
    EXPECT_NE(what.find("tiled_partition_rank"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace bcclb

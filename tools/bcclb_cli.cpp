// bcclb — command-line front end to the laboratory's engines.
//
// Subcommands (run `bcclb help` for the synopsis):
//   counts <n>                 instance-space sizes and the Lemma 3.9 ratio
//   star <n> <t> <adversary>   Theorem 3.5 star-distribution experiment
//   kt0 <n> <t> <adversary>    Theorem 3.1 matching experiment (n <= 9)
//   rules <n> <t> <adversary>  E17 decision-rule optimization (n <= 9)
//   rank <n>                   Theorem 2.3 / Lemma 4.1 join-matrix ranks
//   info <n> [keep]            Theorem 4.5 information experiment (n <= 10)
//   reduce <n> [seed]          Figure 2 pipeline on random partitions
//   upper <n> <b> [seed]       tightness sweep (flood / Boruvka / sketches)
//   bfs <n> <p> [seed]         CONGEST BFS distances and eccentricity
//   faults <n> <b> [seed]      fault-budget sweep + replay verification
//   campaign <dir> [seed]      checkpointed standard campaign into <dir>
//   campaign --resume <dir>    re-run only the unfinished jobs
//   campaign --verify [golden] re-run in memory, diff digests vs golden.json
//   search <dir> …             adversary strategy-search campaign (DESIGN.md §11)
//   sim --implicit …           min-ID flood on an implicit instance (n to 10^6)
//   serve …                    long-lived daemon on a Unix or TCP socket
//   route …                    shard router fronting N serve daemons
//   probe …                    one-shot stats round trip (prints the artifact)
//   loadgen …                  seeded load generator against a running daemon
//   version                    git describe baked in at configure time
//
// Argument parsing is strict: every numeric argument must be a whole,
// in-range number or the command refuses with usage (exit 2); unknown
// subcommands and unknown flags do the same. Errors out
// of the library surface as typed BcclbError with kind + context; anything
// else is a plain std::exception. No helper calls std::exit — all exits
// flow through main.
//
// SIGINT/SIGTERM during a campaign set a sig_atomic_t flag the runner polls
// between job batches: the run flushes a final checkpoint, prints the resume
// command, and exits 130 instead of dying dirty.
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "bcc_lb.h"
#include "common/mathutil.h"

using namespace bcclb;

namespace {

// Strict whole-string parse helpers. Reject empty strings, trailing junk
// ("7x"), out-of-range values, and (for the unsigned parsers) negatives —
// strtoul would silently wrap "-3" to a huge value.
std::optional<std::uint64_t> parse_u64(const char* s) {
  if (s == nullptr || *s == '\0' || *s == '-') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return std::nullopt;
  return static_cast<std::uint64_t>(value);
}

std::optional<std::size_t> parse_size(const char* s) {
  const auto v = parse_u64(s);
  if (!v || static_cast<std::uint64_t>(static_cast<std::size_t>(*v)) != *v) return std::nullopt;
  return static_cast<std::size_t>(*v);
}

std::optional<unsigned> parse_unsigned(const char* s) {
  const auto v = parse_u64(s);
  if (!v || static_cast<std::uint64_t>(static_cast<unsigned>(*v)) != *v) return std::nullopt;
  return static_cast<unsigned>(*v);
}

std::optional<double> parse_double(const char* s) {
  if (s == nullptr || *s == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE) return std::nullopt;
  return value;
}

// Returns nullopt (rather than exiting) on an unknown name; the caller
// prints the options and falls through to usage.
std::optional<AdversaryKind> parse_adversary(const char* name) {
  for (const AdversaryKind kind : all_adversary_kinds()) {
    if (std::strcmp(name, adversary_kind_name(kind)) == 0) return kind;
  }
  std::fprintf(stderr, "unknown adversary '%s'; options:", name);
  for (const AdversaryKind kind : all_adversary_kinds()) {
    std::fprintf(stderr, " %s", adversary_kind_name(kind));
  }
  std::fprintf(stderr, "\n");
  return std::nullopt;
}

int cmd_counts(std::size_t n) {
  std::printf("|V1| (one-cycle structures) = %s\n",
              count_one_cycle_structures(n).to_decimal().c_str());
  std::printf("|V2| (two-cycle structures) = %s\n",
              count_two_cycle_structures(n).to_decimal().c_str());
  std::printf("ratio = %.6f, H(n/2) - 3/2 = %.6f  (Lemma 3.9: Theta(log n))\n",
              two_to_one_cycle_ratio(n), harmonic(n / 2) - 1.5);
  return 0;
}

int cmd_star(std::size_t n, unsigned t, AdversaryKind kind) {
  const PublicCoins coins(1, 4096);
  const auto rep = star_error_experiment(
      n, t, two_cycle_adversary_factory(kind, t, always_yes_rule()), &coins);
  std::printf("|S| = %zu, largest class |S'| = %zu (pigeonhole floor %.3f)\n",
              rep.independent_set_size, rep.largest_class_size, rep.pigeonhole_floor);
  std::printf("forced error = %.6f (theory floor %.6f)\n", rep.forced_error, rep.theory_floor);
  std::printf("crossings verified indistinguishable: %zu/%zu\n", rep.crossings_verified,
              rep.crossings_checked);
  return 0;
}

int cmd_kt0(std::size_t n, unsigned t, AdversaryKind kind) {
  const PublicCoins coins(1, 4096);
  const auto rep = kt0_matching_experiment(
      n, t, two_cycle_adversary_factory(kind, t, always_yes_rule()), &coins);
  std::printf("|V1| = %zu, |V2| = %zu (ratio %.4f, prediction %.4f)\n", rep.v1, rep.v2,
              rep.size_ratio, rep.harmonic_prediction);
  std::printf("best label (x|y) = %s, graph edges = %zu\n", rep.best_label.c_str(),
              rep.graph_edges);
  std::printf("max matching = %zu, max saturating k = %u\n", rep.max_matching,
              rep.max_saturating_k);
  std::printf("certified error >= %.6f, measured error = %.6f\n", rep.matching_error_bound,
              rep.measured_error);
  return 0;
}

int cmd_rules(std::size_t n, unsigned t, AdversaryKind kind) {
  const PublicCoins coins(1, 4096);
  const auto rep = optimize_decision_rule(
      n, t, two_cycle_adversary_factory(kind, t, always_yes_rule()), &coins);
  std::printf("states = %zu, voting NO = %zu\n", rep.num_states, rep.states_voting_no);
  std::printf("greedy-optimized error = %.6f (always-YES = %.2f)\n", rep.greedy_error,
              rep.always_yes_error);
  return 0;
}

int cmd_rank(std::size_t n) {
  if (n <= 8) {
    const auto r = partition_matrix_rank(n);
    std::printf("rank(M_%zu) = %zu / %zu (%s) — log-rank bound %.2f bits\n", n,
                std::max(r.rank_gf2, r.rank_modp), r.dimension,
                r.full_rank ? "full" : "NOT FULL", r.log_rank_bound());
  } else {
    std::printf("rank(M_%zu) = B_%zu (Theorem 2.3): bound = log2(B_n) = %.1f bits\n", n, n,
                partition_cc_lower_bound(n));
  }
  if (n % 2 == 0 && n <= 12) {
    const auto r = two_partition_matrix_rank(n);
    std::printf("rank(E_%zu) = %zu / %zu (%s)\n", n, std::max(r.rank_gf2, r.rank_modp),
                r.dimension, r.full_rank ? "full" : "NOT FULL");
  }
  return 0;
}

int usage();

// Set by the SIGINT/SIGTERM handler, polled by CampaignRunner between job
// batches and by the tiled rank engine between tiles. sig_atomic_t is the
// only type async-signal-safe to write from a handler; everything else
// (checkpoint flush, messaging) happens on the main thread once the runner
// notices the flag.
volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void on_campaign_signal(int) { g_interrupted = 1; }

// Flag-based `rank --n N …`: the out-of-core tiled elimination
// (linalg/tiled_rank.h). Streams M_n tile by tile, checkpoints into --dir,
// and prints/writes a rank certificate whose digest is bit-identical across
// thread counts and across SIGKILL + --resume.
int cmd_rank_tiled(int argc, char** argv) {
  TiledRankConfig config;
  std::optional<std::size_t> n;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (flag == "--n") {
      n = parse_size(next());
      if (!n) return usage();
    } else if (flag == "--field") {
      const char* value = next();
      if (value == nullptr) return usage();
      const auto field = parse_rank_field(value);
      if (!field) {
        std::fprintf(stderr, "unknown field '%s'; options: gf2 modp\n", value);
        return usage();
      }
      config.field = *field;
    } else if (flag == "--prime") {
      const auto p = parse_u64(next());
      if (!p) return usage();
      config.prime = *p;
    } else if (flag == "--tile-rows") {
      const auto k = parse_size(next());
      if (!k || *k == 0) return usage();
      config.tile_rows = *k;
    } else if (flag == "--dir") {
      const char* value = next();
      if (value == nullptr || *value == '\0') return usage();
      config.dir = value;
    } else if (flag == "--resume") {
      config.resume = true;
    } else if (flag == "--threads") {
      const auto t = parse_unsigned(next());
      if (!t) return usage();
      config.threads = *t;
    } else if (flag == "--mem-budget") {
      const char* value = next();
      if (value == nullptr) return usage();
      const auto budget = parse_mem_bytes(value);
      if (!budget) return usage();
      config.mem_budget_bytes = *budget;
    } else {
      std::fprintf(stderr, "unknown rank flag '%s'\n", flag.c_str());
      return usage();
    }
  }
  if (!n) return usage();
  config.n = *n;
  if (config.resume && config.dir.empty()) {
    std::fprintf(stderr, "rank --resume needs --dir <dir> (the checkpoint lives there)\n");
    return usage();
  }

  // BCCLB_MEM_BUDGET is a real resource contract, not a tuning hint: a
  // malformed value must fail loudly rather than silently run unbounded.
  if (config.mem_budget_bytes == 0) {
    if (const char* env = std::getenv("BCCLB_MEM_BUDGET")) {
      const auto budget = parse_mem_bytes(env);
      if (!budget) {
        std::fprintf(stderr, "malformed BCCLB_MEM_BUDGET '%s' (want bytes with optional K/M/G)\n",
                     env);
        return 2;
      }
      config.mem_budget_bytes = *budget;
    }
  }
  // Test hooks mirroring the campaign runner's: strict-parsed, ignored when
  // malformed. The delay widens the SIGKILL window for rank_smoke.sh.
  if (const char* env = std::getenv("BCCLB_RANK_STOP_AFTER")) {
    if (const auto v = parse_size(env)) config.stop_after_tiles = *v;
  }
  if (const char* env = std::getenv("BCCLB_RANK_TILE_DELAY_MS")) {
    if (const auto v = parse_u64(env)) config.inter_tile_delay_ns = *v * 1'000'000ULL;
  }

  std::signal(SIGINT, on_campaign_signal);
  std::signal(SIGTERM, on_campaign_signal);
  config.interrupt = &g_interrupted;
  config.progress = [](std::size_t done, std::size_t total, std::size_t rank) {
    std::fprintf(stderr, "tile %zu/%zu eliminated, rank %zu\n", done, total, rank);
  };

  const auto t0 = std::chrono::steady_clock::now();
  const TiledRankReport report = tiled_partition_rank(config);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  if (!report.complete) {
    if (g_interrupted) {
      std::fprintf(stderr,
                   "interrupted after %zu/%zu tiles (rank so far %zu): checkpoint flushed\n"
                   "resume with: bcclb rank --n %zu --field %s --tile-rows %zu --dir %s --resume\n",
                   report.tiles_resumed + report.tiles_run, report.tiles_total, report.rank,
                   config.n, rank_field_name(config.field), config.tile_rows, config.dir.c_str());
      return 130;
    }
    std::printf("stopped after %zu/%zu tiles (rank so far %zu); checkpoint in %s\n",
                report.tiles_resumed + report.tiles_run, report.tiles_total, report.rank,
                config.dir.c_str());
    return 0;
  }

  char certificate[512];
  std::snprintf(certificate, sizeof(certificate),
                "bcclb rank certificate v1\n"
                "matrix M_%zu\n"
                "dimension %zu\n"
                "field %s\n"
                "prime %llu\n"
                "tile-rows %zu\n"
                "tiles %zu\n"
                "rank %zu\n"
                "full-rank %s\n"
                "certificate %s\n",
                config.n, report.dimension, rank_field_name(config.field),
                static_cast<unsigned long long>(
                    config.field == RankField::kModp ? config.prime : 0),
                config.tile_rows, report.tiles_total, report.rank,
                report.full_rank ? "yes" : "no", report.certificate_digest.c_str());
  std::fputs(certificate, stdout);
  std::printf("tiles run %zu, resumed %zu; peak resident %.1f MiB; wall %.3f s\n",
              report.tiles_run, report.tiles_resumed,
              static_cast<double>(report.peak_resident_bytes) / (1024.0 * 1024.0), wall_s);
  if (!config.dir.empty()) {
    const std::string path = config.dir + "/rank.txt";
    write_file_atomic(path, certificate);
    std::printf("certificate written to %s\n", path.c_str());
  }
  return 0;
}

int cmd_info(std::size_t n, double keep) {
  const auto r = partition_comp_information(n, keep);
  std::printf("H(PA) = %.3f bits, realized error = %.3f\n", r.h_pa, r.realized_error);
  std::printf("I(PA; Pi) = %.3f >= (1-eps)H - 1 = %.3f  (Theorem 4.5)\n",
              r.mutual_information, r.fano_floor);
  std::printf("implied BCC(1) ConnectedComponents rounds >= %.3f\n", r.implied_bcc_rounds);
  return 0;
}

int cmd_reduce(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const SetPartition pa = uniform_partition(n, rng);
  const SetPartition pb = uniform_partition(n, rng);
  std::printf("PA      = %s\nPB      = %s\n", pa.to_string().c_str(), pb.to_string().c_str());
  std::printf("PA v PB = %s\n", pa.join(pb).to_string().c_str());
  const auto out = solve_partition_via_bcc(pa, pb, boruvka_factory(), 6, 800);
  std::printf("BCC decided %s in %u rounds, %llu protocol bits\n",
              out.sim.decision ? "CONNECTED" : "DISCONNECTED", out.sim.bcc_rounds,
              static_cast<unsigned long long>(out.sim.total_bits()));
  std::printf("recovered join %s the lattice join\n",
              out.recovered_join && *out.recovered_join == out.expected_join ? "matches"
                                                                             : "MISMATCHES");
  return 0;
}

int cmd_upper(std::size_t n, unsigned b, std::uint64_t seed) {
  Rng rng(seed);
  const auto p = measure_upper_bounds(random_one_cycle(n, rng).to_graph(), b, "one-cycle", seed);
  std::printf("one-cycle n=%zu b=%u:\n", n, b);
  if (p.flood_ran) {
    std::printf("  flooding : %u rounds (%s)\n", p.flood_rounds, p.flood_correct ? "ok" : "WRONG");
  }
  std::printf("  boruvka  : %u rounds (%s)\n", p.boruvka_rounds,
              p.boruvka_correct ? "ok" : "WRONG");
  if (p.sketch_ran) {
    std::printf("  sketches : %u rounds, %llu bits/vertex (%s)\n", p.sketch_rounds,
                static_cast<unsigned long long>(p.sketch_bits_per_vertex),
                p.sketch_correct ? "ok" : "MC-miss");
  }
  std::printf("  lower-bound reference log2(n)/b = %.2f\n", p.lower_bound_rounds);
  return 0;
}

int cmd_bfs(std::size_t n, double p, std::uint64_t seed) {
  Rng rng(seed);
  const Graph g = random_gnp(n, p, rng);
  const BfsRun out = run_congest_bfs(g, 0);
  std::size_t reached = 0;
  for (const auto& d : out.distances) {
    if (d.has_value()) ++reached;
  }
  std::printf("CONGEST BFS from 0 on G(%zu, %.3f): %u rounds, reached %zu/%zu,\n",
              n, p, out.run.rounds_executed, reached, n);
  std::printf("eccentricity %u (rounds = ecc + O(1): distances cost Theta(D))\n",
              out.eccentricity);
  return 0;
}

int cmd_faults(std::size_t n, unsigned b, std::uint64_t seed) {
  FaultSweepConfig config;
  config.n = n;
  config.bandwidth = b;
  config.seed = seed;
  const FaultBudgetReport report = sweep_fault_budget(config);
  std::printf("fault budgets on a one-cycle, n=%zu b=%u seed=%llu (sweep 0..%u, %u trials):\n",
              n, b, static_cast<unsigned long long>(seed), config.max_faults, config.trials);
  for (const FaultSweepAlgorithm algorithm :
       {FaultSweepAlgorithm::kMinIdFlood, FaultSweepAlgorithm::kBoruvka,
        FaultSweepAlgorithm::kSketch}) {
    std::printf("  %-8s crash=%u drop=%u flip=%u\n", fault_sweep_algorithm_name(algorithm),
                report.budget(algorithm, FaultKind::kCrashStop),
                report.budget(algorithm, FaultKind::kDropBroadcast),
                report.budget(algorithm, FaultKind::kFlipBits));
  }
  std::printf("jobs: %zu ok, %zu failed, %zu timed out\n", report.jobs_ok, report.jobs_failed,
              report.jobs_timed_out);

  Rng rng(seed);
  const BccInstance instance = BccInstance::kt1(random_one_cycle(n, rng).to_graph());
  FaultCounts counts;
  counts.crashes = 1;
  counts.drops = 1;
  const FaultPlan plan = FaultPlan::random(seed + 77, n, 8, counts);
  const ReplayReport rep =
      verify_replay(instance, b, boruvka_factory(), BoruvkaAlgorithm::max_rounds(n, b),
                    CoinSpec::none(), &plan);
  if (rep.errored) {
    std::printf("replay: both runs threw -> %s\n",
                rep.deterministic ? "deterministic" : "NONDETERMINISTIC");
  } else {
    std::printf("replay: digests %016llx/%016llx -> %s\n",
                static_cast<unsigned long long>(rep.digest_first),
                static_cast<unsigned long long>(rep.digest_second),
                rep.deterministic ? "deterministic" : "NONDETERMINISTIC");
  }
  return 0;
}

// Shared checkpointed-run plumbing for the `campaign` and `search`
// subcommands: signal handlers, env hooks, the report print, and the
// exit-130 resume hint (`resume_cmd` names the subcommand in it).
int run_checkpointed_campaign(const Campaign& campaign, const char* dir, bool resume,
                              const char* resume_cmd) {
  std::signal(SIGINT, on_campaign_signal);
  std::signal(SIGTERM, on_campaign_signal);

  CampaignConfig config;
  config.dir = dir;
  config.resume = resume;
  config.interrupt = &g_interrupted;
  // Ops/test hooks, strict-parsed like every other env override (malformed
  // values are ignored, never trusted): a clean stop after N batches, and a
  // between-batch throttle the kill-and-resume smoke tests use to widen the
  // window a real SIGKILL can land in.
  if (const char* env = std::getenv("BCCLB_CAMPAIGN_STOP_AFTER")) {
    if (const auto v = parse_unsigned(env)) config.stop_after_batches = *v;
  }
  if (const char* env = std::getenv("BCCLB_CAMPAIGN_BATCH_DELAY_MS")) {
    if (const auto v = parse_u64(env)) config.inter_batch_delay_ns = *v * 1'000'000ULL;
  }
  const CampaignReport report = CampaignRunner(config).run(campaign);

  std::printf("campaign '%s' seed %llu: %u worker(s)", campaign.name.c_str(),
              static_cast<unsigned long long>(campaign.seed), report.planned_workers);
  if (report.mem_budget_bytes != 0) {
    std::printf(", memory budget %llu bytes",
                static_cast<unsigned long long>(report.mem_budget_bytes));
  }
  std::printf("\n");
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    const CampaignJobRecord& rec = report.records[i];
    std::printf("  %-10s %-24s", campaign_job_state_name(rec.state),
                campaign.jobs[i].name.c_str());
    if (rec.ok()) {
      std::printf(" digest %s%s (%.1f ms)\n", digest_hex(rec.digest).c_str(),
                  rec.resumed ? " [resumed]" : "", rec.wall_time_ns / 1e6);
    } else if (rec.state == CampaignJobState::kPending) {
      std::printf("\n");
    } else {
      std::printf(" (%s) %s\n", rec.error_kind.c_str(), rec.error.c_str());
    }
  }

  if (report.interrupted) {
    std::fprintf(stderr,
                 "interrupted: checkpoint flushed, %zu job(s) still pending\n"
                 "resume with: bcclb %s --resume %s\n",
                 report.num_pending, resume_cmd, dir);
    return 130;
  }
  if (!report.all_done()) {
    std::fprintf(stderr, "campaign incomplete: %zu failed, %zu timed out, %zu refused\n",
                 report.num_failed, report.num_timed_out, report.num_refused);
    return 1;
  }
  std::printf("campaign complete: %zu/%zu jobs (%zu resumed); artifacts in %s\n",
              report.num_done, report.records.size(), report.resumed_jobs, dir);
  std::printf("golden digests: %s\n", campaign_golden_path(dir).c_str());
  return 0;
}

int cmd_campaign_run(const char* dir, std::uint64_t seed, bool resume) {
  return run_checkpointed_campaign(standard_campaign(seed), dir, resume, "campaign");
}

// In-memory re-run + digest diff against a golden store; shared by
// `campaign --verify` and `search --verify`.
int verify_campaign_golden(const char* golden_path, const GoldenStore& golden,
                           const Campaign& campaign) {
  if (golden.campaign != campaign.name) {
    std::fprintf(stderr, "golden store '%s' describes campaign '%s', not '%s'\n", golden_path,
                 golden.campaign.c_str(), campaign.name.c_str());
    return 1;
  }

  CampaignConfig config;  // in-memory: no checkpoint, no artifacts
  config.interrupt = &g_interrupted;
  std::signal(SIGINT, on_campaign_signal);
  std::signal(SIGTERM, on_campaign_signal);
  const CampaignReport report = CampaignRunner(config).run(campaign);
  if (report.interrupted) {
    std::fprintf(stderr, "verification interrupted\n");
    return 130;
  }
  if (!report.all_done()) {
    std::fprintf(stderr, "verification run incomplete: %zu failed, %zu timed out, %zu refused\n",
                 report.num_failed, report.num_timed_out, report.num_refused);
    return 1;
  }

  const GoldenStore fresh = GoldenStore::from_report(campaign, report);
  const auto mismatches = diff_golden(golden, fresh);
  if (!mismatches.empty()) {
    std::fprintf(stderr, "golden digest verification FAILED (%zu mismatch(es) vs %s):\n",
                 mismatches.size(), golden_path);
    for (const GoldenMismatch& m : mismatches) {
      std::fprintf(stderr, "  %-24s expected %s, got %s\n", m.job.c_str(), m.expected.c_str(),
                   m.actual.c_str());
    }
    return 1;
  }
  std::printf("golden digests verified: %zu job(s) match %s\n", golden.digests.size(),
              golden_path);
  return 0;
}

int cmd_campaign_verify(const char* golden_path) {
  const GoldenStore golden = GoldenStore::from_json(read_file(golden_path));
  return verify_campaign_golden(golden_path, golden, standard_campaign(golden.seed));
}

std::optional<SearchDriver> parse_search_driver(const char* name) {
  if (std::strcmp(name, "random") == 0) return SearchDriver::kRandom;
  if (std::strcmp(name, "evolution") == 0) return SearchDriver::kEvolution;
  if (std::strcmp(name, "exhaustive") == 0) return SearchDriver::kExhaustive;
  std::fprintf(stderr, "unknown driver '%s'; options: random evolution exhaustive\n", name);
  return std::nullopt;
}

// The adversary strategy hunt (DESIGN.md §11). The default form runs the
// standard search campaign through the checkpointed CampaignRunner into
// <dir> — kill it (even -9) and `bcclb search --resume <dir>` finishes the
// remaining cells bit-identically. Cell flags (--n/--rounds/…) run one
// ad-hoc cell the same way; --verify re-runs the standard campaign in
// memory and diffs digests against the checked-in golden store.
int cmd_search(int argc, char** argv) {
  const char* dir = nullptr;
  bool resume = false;
  bool verify = false;
  const char* golden_path = "results/search_golden.json";
  std::uint64_t seed = 2019;
  SearchConfig cell;
  bool have_cell = false;

  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--resume") {
      resume = true;
    } else if (flag == "--verify") {
      verify = true;
      if (value != nullptr && value[0] != '-') {
        golden_path = value;
        ++i;
      }
    } else if (flag == "--dir" && value != nullptr) {
      dir = value;
      ++i;
    } else if (flag == "--seed" && value != nullptr) {
      const auto s = parse_u64(value);
      if (!s) return usage();
      seed = *s;
      ++i;
    } else if (flag == "--n" && value != nullptr) {
      const auto n = parse_size(value);
      if (!n) return usage();
      cell.n = *n;
      have_cell = true;
      ++i;
    } else if (flag == "--rounds" && value != nullptr) {
      const auto t = parse_unsigned(value);
      if (!t || *t == 0) return usage();
      cell.rounds = *t;
      have_cell = true;
      ++i;
    } else if (flag == "--buckets" && value != nullptr) {
      const auto k = parse_unsigned(value);
      if (!k || *k == 0 || *k > 64) return usage();
      cell.buckets = *k;
      have_cell = true;
      ++i;
    } else if (flag == "--budget" && value != nullptr) {
      const auto b = parse_u64(value);
      if (!b) return usage();
      cell.budget = *b;
      have_cell = true;
      ++i;
    } else if (flag == "--driver" && value != nullptr) {
      const auto d = parse_search_driver(value);
      if (!d) return usage();
      cell.driver = *d;
      have_cell = true;
      ++i;
    } else if (flag == "--bandwidth" && value != nullptr) {
      // Accepted for forward compatibility with the paper's BCC(b); the
      // genome only encodes b = 1 broadcasts today, so anything else is a
      // loud refusal, not a silently different experiment.
      const auto b = parse_unsigned(value);
      if (!b) return usage();
      if (*b != 1) {
        std::fprintf(stderr, "search: only --bandwidth 1 is implemented\n");
        return usage();
      }
      ++i;
    } else if (!flag.empty() && flag[0] != '-' && dir == nullptr) {
      dir = argv[i];
    } else {
      return usage();
    }
  }

  if (verify) {
    if (resume || dir != nullptr || have_cell) return usage();
    const GoldenStore golden = GoldenStore::from_json(read_file(golden_path));
    return verify_campaign_golden(golden_path, golden, search_campaign(golden.seed));
  }
  if (dir == nullptr) {
    std::fprintf(stderr, "search: need a checkpoint directory (positional or --dir)\n");
    return usage();
  }
  if (have_cell) {
    cell.seed = seed;
    return run_checkpointed_campaign(single_cell_search_campaign(cell), dir, resume, "search");
  }
  return run_checkpointed_campaign(search_campaign(seed), dir, resume, "search");
}

int usage();

// bccd: the serving daemon (DESIGN.md §6). SIGINT/SIGTERM trigger the drain
// sequence — finish in-flight work, flush stats, exit 0 — via the same
// sig_atomic_t flag the campaign runner polls.
int cmd_serve(int argc, char** argv) {
  ServeConfig config;
  bool have_endpoint = false;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--socket" && value != nullptr && *value != '\0') {
      config.unix_path = value;
      have_endpoint = true;
    } else if (flag == "--port" && value != nullptr) {
      const auto port = parse_unsigned(value);
      if (!port || *port > 65535) return usage();
      config.tcp_port = static_cast<std::uint16_t>(*port);
      have_endpoint = true;
    } else if (flag == "--threads" && value != nullptr) {
      const auto threads = parse_unsigned(value);
      if (!threads) return usage();
      config.threads = *threads;
    } else if (flag == "--queue" && value != nullptr) {
      const auto capacity = parse_size(value);
      if (!capacity || *capacity == 0) return usage();
      config.queue_capacity = *capacity;
    } else if (flag == "--cache-budget" && value != nullptr) {
      const auto budget = parse_mem_bytes(value);
      if (!budget) return usage();
      config.cache_budget_bytes = *budget;
    } else if (flag == "--max-connections" && value != nullptr) {
      const auto cap = parse_size(value);
      if (!cap || *cap == 0) return usage();
      config.max_connections = *cap;
    } else if (flag == "--store" && value != nullptr && *value != '\0') {
      config.store_dir = value;
    } else {
      return usage();
    }
    ++i;  // every flag consumed a value
  }
  if (!have_endpoint) return usage();

  // Deterministic fault injection, chaos-harness only. Strict like every
  // other env override: a malformed spec is a loud startup failure, never a
  // silently fault-free run.
  if (const auto faults = serve_fault_plan_from_env()) config.faults = *faults;

  std::signal(SIGINT, on_campaign_signal);
  std::signal(SIGTERM, on_campaign_signal);
  config.drain_flag = &g_interrupted;

  ServeServer server(std::move(config));
  server.bind();
  // Announce-and-flush so wrapper scripts can wait for readiness by reading
  // one line.
  std::printf("bccd listening on %s\n", server.endpoint().c_str());
  std::fflush(stdout);

  const ServeStats stats = server.run();
  std::printf("bccd drained: %llu admitted, %llu ok, %llu failed\n",
              static_cast<unsigned long long>(stats.requests_admitted),
              static_cast<unsigned long long>(stats.responses_ok),
              static_cast<unsigned long long>(stats.compute_failed));
  std::printf("  rejected: queue-full %llu, too-large %llu, protocol %llu, draining %llu\n",
              static_cast<unsigned long long>(stats.queue_full),
              static_cast<unsigned long long>(stats.too_large),
              static_cast<unsigned long long>(stats.protocol_violations),
              static_cast<unsigned long long>(stats.draining_rejected));
  std::printf("  cache: %llu hits, %llu misses, %llu evictions, %llu verify-failures; "
              "coalesced %llu\n",
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              static_cast<unsigned long long>(stats.cache.evictions),
              static_cast<unsigned long long>(stats.cache.verify_failures),
              static_cast<unsigned long long>(stats.coalesced));
  if (server.disk_store() != nullptr) {
    std::printf("  disk: %llu hits, %llu misses, %llu writes, %llu write-failures, "
                "%llu quarantined\n",
                static_cast<unsigned long long>(stats.disk.hits),
                static_cast<unsigned long long>(stats.disk.misses),
                static_cast<unsigned long long>(stats.disk.writes),
                static_cast<unsigned long long>(stats.disk.write_failures),
                static_cast<unsigned long long>(stats.disk.quarantined));
  }
  if (stats.chaos_stalls != 0 || stats.chaos_corrupted_responses != 0 ||
      stats.chaos_corrupted_disk != 0) {
    std::printf("  chaos: %llu stalls, %llu corrupted responses, %llu corrupted disk entries\n",
                static_cast<unsigned long long>(stats.chaos_stalls),
                static_cast<unsigned long long>(stats.chaos_corrupted_responses),
                static_cast<unsigned long long>(stats.chaos_corrupted_disk));
  }
  return 0;
}

int cmd_loadgen(int argc, char** argv) {
  LoadgenConfig config;
  bool have_endpoint = false;
  const char* json_path = nullptr;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--socket" && value != nullptr && *value != '\0') {
      config.unix_path = value;
      have_endpoint = true;
    } else if (flag == "--port" && value != nullptr) {
      const auto port = parse_unsigned(value);
      if (!port || *port == 0 || *port > 65535) return usage();
      config.tcp_port = static_cast<std::uint16_t>(*port);
      have_endpoint = true;
    } else if (flag == "--requests" && value != nullptr) {
      const auto requests = parse_size(value);
      if (!requests || *requests == 0) return usage();
      config.requests = *requests;
    } else if (flag == "--concurrency" && value != nullptr) {
      const auto concurrency = parse_unsigned(value);
      if (!concurrency || *concurrency == 0) return usage();
      config.concurrency = *concurrency;
    } else if (flag == "--seed" && value != nullptr) {
      const auto seed = parse_u64(value);
      if (!seed) return usage();
      config.seed = *seed;
    } else if (flag == "--pool" && value != nullptr) {
      const auto pool = parse_size(value);
      if (!pool || *pool == 0) return usage();
      config.pool_size = *pool;
    } else if (flag == "--max-n" && value != nullptr) {
      const auto max_n = parse_unsigned(value);
      if (!max_n || *max_n < 4) return usage();
      config.max_n = *max_n;
    } else if (flag == "--stats-every" && value != nullptr) {
      const auto every = parse_size(value);
      if (!every) return usage();
      config.stats_every = *every;
    } else if (flag == "--retries" && value != nullptr) {
      const auto retries = parse_unsigned(value);
      if (!retries) return usage();
      config.max_retries = *retries;
    } else if (flag == "--deadline-ms" && value != nullptr) {
      const auto deadline = parse_u64(value);
      if (!deadline) return usage();
      config.deadline_ms = *deadline;
    } else if (flag == "--backoff-ms" && value != nullptr) {
      const auto backoff = parse_u64(value);
      if (!backoff || *backoff == 0) return usage();
      config.backoff_base_ms = *backoff;
    } else if (flag == "--zipf" && value != nullptr) {
      const auto s = parse_double(value);
      if (!s || *s < 0.0) return usage();
      config.zipf_s = *s;
    } else if (flag == "--router") {
      config.router = true;
      continue;  // no value consumed
    } else if (flag == "--json" && value != nullptr && *value != '\0') {
      json_path = value;
    } else {
      return usage();
    }
    ++i;
  }
  if (!have_endpoint) return usage();

  const LoadgenReport report = run_loadgen(config);
  const std::string json = loadgen_report_json(config, report);
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "loadgen: cannot write '%s': %s\n", json_path, std::strerror(errno));
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  } else {
    std::fwrite(json.data(), 1, json.size(), stdout);
  }

  std::fprintf(stderr, "loadgen: %zu requests in %.3f s (%.1f rps)\n", report.requests_sent,
               report.wall_seconds, report.throughput_rps);
  std::fprintf(stderr,
               "  ok %zu, errors %zu, probes %zu | cold %zu, hits %zu, coalesced %zu, "
               "disk %zu | retries %zu, reconnects %zu\n",
               report.ok, report.errors, report.stats_probes, report.cold, report.cache_hits,
               report.coalesced, report.disk_hits, report.retries, report.reconnects);
  std::fprintf(stderr, "  p50 %.3f ms, p95 %.3f ms, p99 %.3f ms (cold p50 %.3f, warm p50 %.3f)\n",
               report.p50_ms, report.p95_ms, report.p99_ms, report.cold_p50_ms,
               report.warm_p50_ms);
  for (const auto& [name, count] : report.error_counts) {
    std::fprintf(stderr, "  error %s: %llu\n", name.c_str(),
                 static_cast<unsigned long long>(count));
  }
  if (report.digest_mismatches != 0 || report.byte_mismatches != 0) {
    // Typed rejections under load are expected; wrong bytes never are.
    std::fprintf(stderr, "loadgen: INTEGRITY FAILURE — %zu digest, %zu byte mismatches\n",
                 report.digest_mismatches, report.byte_mismatches);
    return 1;
  }
  return 0;
}

// bccr: the shard router (DESIGN.md §9). Fronts N `bcclb serve` daemons with
// rendezvous hashing, per-backend circuit breakers, failover and optional
// hedging. Drains on SIGINT/SIGTERM exactly like bccd.
int cmd_route(int argc, char** argv) {
  RouterConfig config;
  bool have_endpoint = false;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--socket" && value != nullptr && *value != '\0') {
      config.unix_path = value;
      have_endpoint = true;
    } else if (flag == "--port" && value != nullptr) {
      const auto port = parse_unsigned(value);
      if (!port || *port > 65535) return usage();
      config.tcp_port = static_cast<std::uint16_t>(*port);
      have_endpoint = true;
    } else if (flag == "--backend" && value != nullptr) {
      const auto endpoint = parse_backend_endpoint(value);
      if (!endpoint) return usage();
      config.backends.push_back(*endpoint);
    } else if (flag == "--fail-threshold" && value != nullptr) {
      const auto threshold = parse_unsigned(value);
      if (!threshold || *threshold == 0) return usage();
      config.health.fail_threshold = *threshold;
    } else if (flag == "--open-ms" && value != nullptr) {
      const auto ms = parse_u64(value);
      if (!ms) return usage();
      config.health.open_cooldown_ms = *ms;
    } else if (flag == "--probe-interval-ms" && value != nullptr) {
      const auto ms = parse_u64(value);
      if (!ms) return usage();
      config.health.probe_interval_ms = *ms;
    } else if (flag == "--probe-deadline-ms" && value != nullptr) {
      const auto ms = parse_u64(value);
      if (!ms || *ms == 0) return usage();
      config.health.probe_deadline_ms = *ms;
    } else if (flag == "--attempt-deadline-ms" && value != nullptr) {
      const auto ms = parse_u64(value);
      if (!ms || *ms == 0) return usage();
      config.attempt_deadline_ms = *ms;
    } else if (flag == "--hedge-ms" && value != nullptr) {
      const auto ms = parse_u64(value);
      if (!ms) return usage();
      config.hedge_delay_ms = *ms;
    } else if (flag == "--max-connections" && value != nullptr) {
      const auto cap = parse_size(value);
      if (!cap || *cap == 0) return usage();
      config.max_connections = *cap;
    } else if (flag == "--seed" && value != nullptr) {
      const auto seed = parse_u64(value);
      if (!seed) return usage();
      config.health.seed = *seed;
    } else {
      return usage();
    }
    ++i;  // every flag consumed a value
  }
  if (!have_endpoint || config.backends.empty()) return usage();

  std::signal(SIGINT, on_campaign_signal);
  std::signal(SIGTERM, on_campaign_signal);
  config.drain_flag = &g_interrupted;

  RouterServer router(std::move(config));
  router.bind();
  std::printf("bccr listening on %s across %zu backend(s)\n", router.endpoint().c_str(),
              router.pool().size());
  std::fflush(stdout);

  const RouterStats stats = router.run();
  std::printf("bccr drained: %llu routed, %llu ok, %llu error\n",
              static_cast<unsigned long long>(stats.requests_routed),
              static_cast<unsigned long long>(stats.responses_ok),
              static_cast<unsigned long long>(stats.responses_error));
  std::printf("  failovers %llu, hedges %llu (won %llu), digest-rejected %llu, no-backend %llu\n",
              static_cast<unsigned long long>(stats.failovers),
              static_cast<unsigned long long>(stats.hedges_launched),
              static_cast<unsigned long long>(stats.hedges_won),
              static_cast<unsigned long long>(stats.digest_rejected),
              static_cast<unsigned long long>(stats.no_backend));
  for (std::size_t id = 0; id < stats.backends.size(); ++id) {
    const BackendSnapshot& b = stats.backends[id];
    std::printf("  backend %zu %s state=%s routed=%llu failures=%llu opened=%llu "
                "readmitted=%llu\n",
                id, b.endpoint.to_string().c_str(), backend_state_name(b.state),
                static_cast<unsigned long long>(b.counters.routed),
                static_cast<unsigned long long>(b.counters.failures),
                static_cast<unsigned long long>(b.counters.circuit_opened),
                static_cast<unsigned long long>(b.counters.circuit_closed));
  }
  return 0;
}

// One-shot health probe: a single kStats round trip, artifact to stdout.
// Works against both bccd and bccr — cluster_smoke.sh greps router stats
// (circuit states, failover counters) through this.
int cmd_probe(int argc, char** argv) {
  std::string unix_path;
  std::uint16_t tcp_port = 0;
  bool have_endpoint = false;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--socket" && value != nullptr && *value != '\0') {
      unix_path = value;
      have_endpoint = true;
    } else if (flag == "--port" && value != nullptr) {
      const auto port = parse_unsigned(value);
      if (!port || *port == 0 || *port > 65535) return usage();
      tcp_port = static_cast<std::uint16_t>(*port);
      have_endpoint = true;
    } else {
      return usage();
    }
    ++i;
  }
  if (!have_endpoint) return usage();

  ServeClient client = unix_path.empty() ? ServeClient::connect_tcp(tcp_port)
                                         : ServeClient::connect_unix(unix_path);
  Request request;
  request.type = RequestType::kStats;
  ClientRetryPolicy policy;
  policy.deadline_ms = 5000;
  const RetryOutcome outcome = client.request_with_retry(request, policy);
  const Response& response = require_ok(outcome.response);
  std::fwrite(response.artifact.data(), 1, response.artifact.size(), stdout);
  return 0;
}

// Million-node simulation over an implicitly defined instance: the
// InstanceView scale path. Flags override the BCCLB_SIM_* environment
// defaults; all of them go through the strict parser, so a malformed
// override is a loud failure, never a silently different experiment.
int cmd_sim(int argc, char** argv) {
  ImplicitSpec spec;
  spec.seed = 2019;
  std::optional<std::uint64_t> n;
  unsigned bandwidth = 0;  // 0 = smallest width that carries every ID
  unsigned threads = 1;
  bool implicit = false;
  bool digest = false;

  // Environment defaults (strict: set-but-malformed throws BcclbError).
  if (const auto env_n = env_u64_required_valid("BCCLB_SIM_N")) n = *env_n;
  if (const auto env_seed = env_u64_required_valid("BCCLB_SIM_SEED")) spec.seed = *env_seed;
  if (const auto env_family = env_string("BCCLB_SIM_FAMILY")) {
    const auto parsed = parse_implicit_family(*env_family);
    if (!parsed) {
      std::fprintf(stderr, "BCCLB_SIM_FAMILY=\"%.*s\" is not an implicit family\n",
                   static_cast<int>(env_family->size()), env_family->data());
      return usage();
    }
    spec.family = *parsed;
  }

  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--implicit") {
      implicit = true;
    } else if (flag == "--digest") {
      digest = true;
    } else if (flag == "--family" && value != nullptr) {
      const auto parsed = parse_implicit_family(value);
      if (!parsed) {
        std::fprintf(stderr,
                     "unknown family '%s'; options: one-cycle two-cycle multi-cycle "
                     "random-regular\n",
                     value);
        return usage();
      }
      spec.family = *parsed;
      ++i;
    } else if (flag == "--n" && value != nullptr) {
      n = parse_u64(value);
      if (!n) return usage();
      ++i;
    } else if (flag == "--seed" && value != nullptr) {
      const auto seed = parse_u64(value);
      if (!seed) return usage();
      spec.seed = *seed;
      ++i;
    } else if (flag == "--bandwidth" && value != nullptr) {
      const auto b = parse_unsigned(value);
      if (!b || *b < 1 || *b > 64) return usage();
      bandwidth = *b;
      ++i;
    } else if (flag == "--threads" && value != nullptr) {
      const auto t = parse_unsigned(value);
      if (!t || *t == 0) return usage();
      threads = *t;
      ++i;
    } else if (flag == "--cycles" && value != nullptr) {
      const auto c = parse_unsigned(value);
      if (!c || *c == 0) return usage();
      spec.cycles = *c;
      ++i;
    } else {
      return usage();
    }
  }
  if (!implicit) {
    std::fprintf(stderr, "sim: only the --implicit path exists (explicit instances go through "
                         "the enumeration commands)\n");
    return usage();
  }
  if (!n) {
    std::fprintf(stderr, "sim: need --n (or BCCLB_SIM_N)\n");
    return usage();
  }
  spec.n = *n;

  const auto report = implicit_classify_experiment(spec, bandwidth, threads, digest);
  std::printf("sim-implicit family=%s n=%llu seed=%llu\n", implicit_family_name(spec.family),
              static_cast<unsigned long long>(spec.n),
              static_cast<unsigned long long>(spec.seed));
  std::printf("bandwidth = %u, rounds = %u\n", report.bandwidth, report.rounds_executed);
  std::printf("components found = %llu, expected = %llu\n",
              static_cast<unsigned long long>(report.components_found),
              static_cast<unsigned long long>(report.components_expected));
  std::printf("decision = %s (connectivity), correct = %s\n", report.decision ? "YES" : "NO",
              report.verdict_correct ? "yes" : "NO");
  std::printf("total bits broadcast = %llu\n",
              static_cast<unsigned long long>(report.total_bits_broadcast));
  std::printf("labels digest = %s\n", digest_hex(report.labels_digest).c_str());
  if (digest) {
    std::printf("transcript digest = %s\n", digest_hex(report.transcript_digest).c_str());
  }
  std::printf("peak state = %.1f MiB (O(n); no O(n^2) tables)\n",
              static_cast<double>(report.peak_buffer_bytes) / (1024.0 * 1024.0));
  std::printf("wall = %.3f s, %.1f rounds/sec\n",
              static_cast<double>(report.wall_time_ns) * 1e-9, report.rounds_per_sec);
  return report.verdict_correct ? 0 : 1;
}

int usage() {
  std::fprintf(stderr,
               "usage: bcclb <command> [args]\n"
               "  counts <n>\n"
               "  star   <n> <t> <adversary>\n"
               "  kt0    <n> <t> <adversary>   (6 <= n <= 9)\n"
               "  rules  <n> <t> <adversary>   (6 <= n <= 9)\n"
               "  rank   <n>\n"
               "  rank   --n N [--field gf2|modp] [--tile-rows K] [--dir D] [--resume]\n"
               "         [--threads T] [--prime P] [--mem-budget BYTES]\n"
               "  info   <n> [keep=1.0]        (n <= 10)\n"
               "  reduce <n> [seed=1]\n"
               "  upper  <n> <b> [seed=1]\n"
               "  bfs    <n> <p> [seed=1]\n"
               "  faults <n> <b> [seed=2019]\n"
               "  campaign <dir> [seed=2019]\n"
               "  campaign --resume <dir> [seed=2019]\n"
               "  campaign --verify [golden=results/golden.json]\n"
               "  search <dir> [--seed S] [--resume]\n"
               "  search --n N --rounds T [--driver random|evolution|exhaustive]\n"
               "         [--buckets K] [--budget B] [--seed S] [--bandwidth 1]\n"
               "         [--dir D] [--resume]\n"
               "  search --verify [golden=results/search_golden.json]\n"
               "  sim     --implicit [--family F] [--n N] [--seed S] [--bandwidth B]\n"
               "          [--threads N] [--cycles K] [--digest]\n"
               "  serve   (--socket <path> | --port <p>) [--threads N] [--queue N]\n"
               "          [--cache-budget <bytes>] [--max-connections N] [--store <dir>]\n"
               "  route   (--socket <path> | --port <p>) --backend (unix:<path>|tcp:<p>) ...\n"
               "          [--fail-threshold N] [--open-ms MS] [--probe-interval-ms MS]\n"
               "          [--probe-deadline-ms MS] [--attempt-deadline-ms MS] [--hedge-ms MS]\n"
               "          [--max-connections N] [--seed S]\n"
               "  probe   (--socket <path> | --port <p>)\n"
               "  loadgen (--socket <path> | --port <p>) [--requests N] [--concurrency N]\n"
               "          [--seed S] [--pool N] [--max-n N] [--stats-every N] [--json <path>]\n"
               "          [--retries N] [--deadline-ms MS] [--backoff-ms MS] [--zipf S]\n"
               "          [--router]\n"
               "  version\n"
               "adversaries: silent id-bits hashed-id coin-xor-id port-parity echo state-hash\n"
               "families: one-cycle two-cycle multi-cycle random-regular\n"
               "numeric arguments must be whole in-range numbers\n"
               "campaign, search, and rank --n honour BCCLB_THREADS and BCCLB_MEM_BUDGET\n"
               "  (bytes, K/M/G suffix);\n"
               "serve honours BCCLB_MEM_BUDGET for the artifact cache and BCCLB_SERVE_FAULTS\n"
               "  for deterministic chaos injection (see DESIGN.md §8);\n"
               "sim honours BCCLB_SIM_N, BCCLB_SIM_SEED, BCCLB_SIM_FAMILY (flags override)\n");
  return 2;
}

#ifndef BCCLB_GIT_DESCRIBE
#define BCCLB_GIT_DESCRIBE "unknown"
#endif

int dispatch(int argc, char** argv) {
  const std::string cmd = argv[1];
  if (cmd == "version" || cmd == "--version") {
    std::printf("bcclb %s\n", BCCLB_GIT_DESCRIBE);
    return 0;
  }
  if (cmd == "serve") return cmd_serve(argc, argv);
  if (cmd == "route") return cmd_route(argc, argv);
  if (cmd == "probe") return cmd_probe(argc, argv);
  if (cmd == "loadgen") return cmd_loadgen(argc, argv);
  if (cmd == "sim") return cmd_sim(argc, argv);
  if (cmd == "counts" && argc >= 3) {
    const auto n = parse_size(argv[2]);
    if (!n) return usage();
    return cmd_counts(*n);
  }
  if ((cmd == "star" || cmd == "kt0" || cmd == "rules") && argc >= 5) {
    const auto n = parse_size(argv[2]);
    const auto t = parse_unsigned(argv[3]);
    if (!n || !t) return usage();
    const auto kind = parse_adversary(argv[4]);
    if (!kind) return usage();
    if (cmd == "star") return cmd_star(*n, *t, *kind);
    if (cmd == "kt0") return cmd_kt0(*n, *t, *kind);
    return cmd_rules(*n, *t, *kind);
  }
  if (cmd == "rank" && argc >= 3) {
    // Flag form (`rank --n 9 …`) is the out-of-core tiled elimination;
    // positional form (`rank 7`) keeps the legacy dense summary.
    if (argv[2][0] == '-') return cmd_rank_tiled(argc, argv);
    const auto n = parse_size(argv[2]);
    if (!n) return usage();
    return cmd_rank(*n);
  }
  if (cmd == "info" && argc >= 3) {
    const auto n = parse_size(argv[2]);
    const auto keep = argc >= 4 ? parse_double(argv[3]) : std::optional<double>(1.0);
    if (!n || !keep) return usage();
    return cmd_info(*n, *keep);
  }
  if (cmd == "reduce" && argc >= 3) {
    const auto n = parse_size(argv[2]);
    const auto seed = argc >= 4 ? parse_u64(argv[3]) : std::optional<std::uint64_t>(1);
    if (!n || !seed) return usage();
    return cmd_reduce(*n, *seed);
  }
  if (cmd == "upper" && argc >= 4) {
    const auto n = parse_size(argv[2]);
    const auto b = parse_unsigned(argv[3]);
    const auto seed = argc >= 5 ? parse_u64(argv[4]) : std::optional<std::uint64_t>(1);
    if (!n || !b || !seed) return usage();
    return cmd_upper(*n, *b, *seed);
  }
  if (cmd == "bfs" && argc >= 4) {
    const auto n = parse_size(argv[2]);
    const auto p = parse_double(argv[3]);
    const auto seed = argc >= 5 ? parse_u64(argv[4]) : std::optional<std::uint64_t>(1);
    if (!n || !p || !seed) return usage();
    return cmd_bfs(*n, *p, *seed);
  }
  if (cmd == "campaign" && argc >= 3) {
    const std::string arg = argv[2];
    if (arg == "--verify") {
      return cmd_campaign_verify(argc >= 4 ? argv[3] : "results/golden.json");
    }
    if (arg == "--resume") {
      if (argc < 4) return usage();
      const auto seed = argc >= 5 ? parse_u64(argv[4]) : std::optional<std::uint64_t>(2019);
      if (!seed) return usage();
      return cmd_campaign_run(argv[3], *seed, /*resume=*/true);
    }
    if (arg.empty() || arg[0] == '-') return usage();
    const auto seed = argc >= 4 ? parse_u64(argv[3]) : std::optional<std::uint64_t>(2019);
    if (!seed) return usage();
    return cmd_campaign_run(argv[2], *seed, /*resume=*/false);
  }
  if (cmd == "search") return cmd_search(argc, argv);
  if (cmd == "faults" && argc >= 4) {
    const auto n = parse_size(argv[2]);
    const auto b = parse_unsigned(argv[3]);
    const auto seed = argc >= 5 ? parse_u64(argv[4]) : std::optional<std::uint64_t>(2019);
    if (!n || !b || !seed) return usage();
    return cmd_faults(*n, *b, *seed);
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    return dispatch(argc, argv);
  } catch (const BcclbError& e) {
    std::fprintf(stderr, "error (%s): %s\n", e.kind(), e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
